package masm

import (
	"fmt"

	"dorado/internal/microcode"
)

// Splice relocates extra's microcode into pages base does not use and
// returns the combined image — how the real Dorado composed its microstore
// from independently assembled overlays (the store is writable, §6.2.3).
//
// Relocation moves whole pages: in-page GOTO/CALL/BRANCH words are
// position-independent (NEXTPC takes its page bits from the executing
// address), and cross-page transfers carry their target page in FF, which
// is remapped. Programs containing DISPATCH256 regions cannot be spliced
// (their trampolines are pinned to absolute region addresses).
func Splice(base, extra *Program) (*Program, error) {
	return SpliceAs(base, extra, "")
}

// SpliceAs is Splice with every symbol of extra prefixed (composing images
// that reuse label names, e.g. several emulators' "boot").
func SpliceAs(base, extra *Program, prefix string) (*Program, error) {
	// Enumerate base's free and extra's used pages.
	var usedBase, usedExtra [microcode.NumPages]bool
	for a := 0; a < microcode.StoreSize; a++ {
		if base.Used[a] {
			usedBase[a>>4] = true
		}
		if extra.Used[a] {
			usedExtra[a>>4] = true
		}
	}
	pageMap := map[uint8]uint8{}
	next := 0
	for p := 0; p < microcode.NumPages; p++ {
		if !usedExtra[p] {
			continue
		}
		for next < microcode.NumPages && usedBase[next] {
			next++
		}
		if next == microcode.NumPages {
			return nil, fmt.Errorf("masm: splice: no free pages left in the base image")
		}
		pageMap[uint8(p)] = uint8(next)
		next++
	}

	out := &Program{Symbols: map[string]microcode.Addr{}, Stats: base.Stats}
	out.Words = base.Words
	out.Used = base.Used
	for n, a := range base.Symbols {
		out.Symbols[n] = a
	}
	for a := 0; a < microcode.StoreSize; a++ {
		if !extra.Used[a] {
			continue
		}
		w := extra.Words[a]
		op := w.NextOp()
		if op.UsesFFAsAddress() {
			switch op.Kind {
			case microcode.NextLongGoto, microcode.NextLongCall:
				np, ok := pageMap[w.FF]
				if !ok {
					return nil, fmt.Errorf("masm: splice: %v long-transfers to page %#02x outside the spliced program",
						microcode.Addr(a), w.FF)
				}
				w.FF = np
			case microcode.NextDispatch256:
				return nil, fmt.Errorf("masm: splice: DISPATCH256 at %v is pinned to an absolute region",
					microcode.Addr(a))
				// NextDispatch8's FF selects a word within the current page:
				// position-independent, nothing to remap.
			}
		}
		na := microcode.MakeAddr(pageMap[microcode.Addr(a).Page()], microcode.Addr(a).Word())
		out.Words[na] = w
		out.Used[na] = true
	}
	for n, a := range extra.Symbols {
		name := prefix + n
		if _, dup := out.Symbols[name]; dup {
			return nil, fmt.Errorf("masm: splice: symbol %q defined in both images", name)
		}
		out.Symbols[name] = microcode.MakeAddr(pageMap[a.Page()], a.Word())
	}
	out.Stats.WordsUsed = 0
	pages := map[uint8]bool{}
	for a := 0; a < microcode.StoreSize; a++ {
		if out.Used[a] {
			out.Stats.WordsUsed++
			pages[microcode.Addr(a).Page()] = true
		}
	}
	out.Stats.PagesTouched = len(pages)
	out.Stats.UtilizationTouched = float64(out.Stats.WordsUsed) / float64(out.Stats.PagesTouched*microcode.PageSize)
	out.Stats.UtilizationStore = float64(out.Stats.WordsUsed) / float64(microcode.StoreSize)
	return out, nil
}
