package masm

import (
	"testing"
)

// FuzzParseText throws arbitrary text at the microassembler's parser. Two
// properties: ParseText must never panic, and where the text actually
// assembles, the canonical rendering must round-trip — Format(parse(src))
// reparses and reassembles to the identical word image (the
// assemble→disassemble→assemble fixpoint).
func FuzzParseText(f *testing.F) {
	f.Add("main: r=1 alu=a+1 lc=rm goto main\n")
	f.Add("loop: const=0x1234 lc=t\n halt\n")
	f.Add("a: br count,,a\nb: alu=a-1 lc=rm goto a\n")
	f.Add("x: ff=input lc=t\n stack=1 block goto x\n")
	f.Add("v: disp8 v,w,v,w\nw: ret\n")
	f.Add("m: call s ; comment\n halt\ns: ff=getlink lc=t ret\n")
	f.Add("r=16")
	f.Add("q: a=md b=q alu=xnor lc=both ifujump\n")
	f.Fuzz(func(t *testing.T, src string) {
		b, err := ParseText(src)
		if err != nil {
			return // rejected input only has to be rejected cleanly
		}
		p1, err := b.Assemble()
		if err != nil {
			return // parsed but unplaceable (e.g. branch alignment)
		}
		// Everything ParseText can produce, Format must be able to render…
		txt, err := Format(b)
		if err != nil {
			t.Fatalf("Format failed on parsed program: %v\nsource:\n%s", err, src)
		}
		// …and the rendering must mean the same program.
		b2, err := ParseText(txt)
		if err != nil {
			t.Fatalf("reparse failed: %v\nrendering:\n%s", err, txt)
		}
		p2, err := b2.Assemble()
		if err != nil {
			t.Fatalf("reassemble failed: %v\nrendering:\n%s", err, txt)
		}
		if p1.Words != p2.Words {
			t.Fatalf("word image changed across Format round trip\nsource:\n%s\nrendering:\n%s", src, txt)
		}
	})
}
