package masm

import (
	"fmt"

	"dorado/internal/microcode"
)

// FlowKind classifies the symbolic successor of an instruction.
type FlowKind uint8

const (
	// FlowSeq continues at the next instruction emitted to the builder
	// (the assembler picks GOTO or LONGGOTO at placement time).
	FlowSeq FlowKind = iota
	// FlowGoto transfers to a label.
	FlowGoto
	// FlowCall calls a label; the physically following word must be the
	// caller's continuation (the next emitted instruction).
	FlowCall
	// FlowReturn returns through LINK.
	FlowReturn
	// FlowBranch is a two-way conditional: Else (false, even address) and
	// Then (true, odd address), both in the branch's page.
	FlowBranch
	// FlowIFUJump dispatches to the IFU-supplied handler address.
	FlowIFUJump
	// FlowDispatch8 dispatches on B&7 through an 8-entry trampoline table.
	FlowDispatch8
	// FlowDispatch256 dispatches on B&0xFF through a 256-entry region.
	FlowDispatch256
	// FlowSelf loops to this same instruction (idle/halt loops; also the
	// natural successor for an instruction that blocks and is re-entered).
	FlowSelf
)

// Flow is the symbolic control transfer of an instruction.
type Flow struct {
	Kind FlowKind
	// Target is the destination label for Goto/Call.
	Target string
	// Cond, Else, Then describe a Branch. An empty Else means "the next
	// emitted instruction".
	Cond Condition
	Else string
	Then string
	// Table lists dispatch targets (8 for Dispatch8, up to 256 for
	// Dispatch256; missing/empty entries route to the first entry).
	Table []string
}

// Condition aliases microcode.Condition for brevity in microcode sources.
type Condition = microcode.Condition

// Goto returns a Flow transferring to label.
func Goto(label string) Flow { return Flow{Kind: FlowGoto, Target: label} }

// Call returns a Flow calling label.
func Call(label string) Flow { return Flow{Kind: FlowCall, Target: label} }

// Return returns a Flow returning through LINK.
func Return() Flow { return Flow{Kind: FlowReturn} }

// Branch returns a two-way conditional Flow. An empty elseLabel continues
// at the next emitted instruction when the condition is false.
func Branch(cond Condition, elseLabel, thenLabel string) Flow {
	return Flow{Kind: FlowBranch, Cond: cond, Else: elseLabel, Then: thenLabel}
}

// IFUJump returns a Flow dispatching to the next macroinstruction handler.
func IFUJump() Flow { return Flow{Kind: FlowIFUJump} }

// Dispatch8 returns a Flow dispatching on B&7 to the eight labels.
func Dispatch8(labels ...string) Flow { return Flow{Kind: FlowDispatch8, Table: labels} }

// Dispatch256 returns a Flow dispatching on B&0xFF to the given labels
// (index = selector value; missing entries fall back to entry 0).
func Dispatch256(labels []string) Flow { return Flow{Kind: FlowDispatch256, Table: labels} }

// Self returns a Flow looping back to the same instruction.
func Self() Flow { return Flow{Kind: FlowSelf} }

// I is one symbolic microinstruction. The zero value is a no-op that falls
// through to the next emitted instruction.
type I struct {
	R     uint8                 // RAddress: RM low address, or stack delta in stack mode
	ALU   microcode.ALUFn       // ALUOp (the default ALUFM maps index i to function i)
	A     microcode.ASelect     // A bus source / memory start
	B     microcode.BSelect     // B bus source (overridden by Const)
	LC    microcode.LoadControl // result destinations
	Block bool                  // release the processor after this instruction
	FF    uint8                 // FF function (conflicts with Const and long flows)

	// Const, when HasConst is set, asks the assembler to source B with the
	// 16-bit constant via the §5.9 byte scheme. Constants whose two bytes
	// are both "interesting" (neither 0x00 nor 0xFF) are not expressible in
	// one instruction and are rejected.
	Const    uint16
	HasConst bool

	Flow Flow
}

// Const16 marks i as using the B-bus constant v (§5.9).
func Const16(v uint16) (b microcode.BSelect, ff uint8, err error) {
	hi, lo := uint8(v>>8), uint8(v)
	switch {
	case hi == 0x00:
		return microcode.BSelConstLo, lo, nil
	case hi == 0xFF:
		return microcode.BSelConstLoOnes, lo, nil
	case lo == 0x00:
		return microcode.BSelConstHi, hi, nil
	case lo == 0xFF:
		return microcode.BSelConstHiOnes, hi, nil
	}
	return 0, 0, fmt.Errorf("masm: constant %#04x needs two instructions (neither byte is all-zeros or all-ones)", v)
}

// ffBusy reports whether the instruction's FF field is unavailable for
// long-transfer page bits: either it holds a function or a constant byte.
func (i I) ffBusy() bool {
	return i.HasConst || i.FF != microcode.FFNop
}

// inst is the assembler's working record for one instruction.
type inst struct {
	I
	labels []string // labels defined at this instruction
	index  int      // emission order
	src    string   // provenance for error messages

	// d8table holds the eight trampolines of a FlowDispatch8 instruction.
	d8table []*inst

	// resolved at assembly time
	addr   microcode.Addr
	placed bool
	pinned bool // pre-placed in a DISPATCH256 region
}
