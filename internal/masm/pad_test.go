package masm

import (
	"testing"

	"dorado/internal/microcode"
)

func TestPadInsertsOnTHazard(t *testing.T) {
	b := NewBuilder()
	b.EmitAt("start", masm0Const(5, microcode.LCLoadT))
	b.Emit(I{ALU: microcode.ALUAplus1, A: microcode.ASelT, LC: microcode.LCLoadT})
	b.Halt()
	if n := b.PadCount(); n != 1 {
		t.Fatalf("PadCount = %d, want 1", n)
	}
	padded := b.PaddedForNoBypass()
	if padded.Len() != b.Len()+1 {
		t.Fatalf("padded len %d, want %d", padded.Len(), b.Len()+1)
	}
	if _, err := padded.Assemble(); err != nil {
		t.Fatal(err)
	}
}

func masm0Const(v uint16, lc microcode.LoadControl) I {
	return I{Const: v, HasConst: true, ALU: microcode.ALUB, LC: lc}
}

func TestPadRMHazardNeedsSameAddress(t *testing.T) {
	b := NewBuilder()
	b.Label("start")
	b.Emit(I{ALU: microcode.ALUAplus1, A: microcode.ASelRM, R: 1, LC: microcode.LCLoadRM})
	b.Emit(I{ALU: microcode.ALUAplus1, A: microcode.ASelRM, R: 2, LC: microcode.LCLoadRM}) // different register
	b.Emit(I{ALU: microcode.ALUAplus1, A: microcode.ASelRM, R: 2, LC: microcode.LCLoadRM}) // same register
	b.Halt()
	if n := b.PadCount(); n != 1 {
		t.Errorf("PadCount = %d, want 1 (only the same-register pair)", n)
	}
}

func TestPadStackHazard(t *testing.T) {
	b := NewBuilder()
	b.Label("start")
	b.Emit(I{Const: 1, HasConst: true, ALU: microcode.ALUB, LC: microcode.LCLoadRM, Block: true, R: 1})
	b.Emit(I{ALU: microcode.ALUA, Block: true, R: 15, LC: microcode.LCLoadT})
	b.Halt()
	if n := b.PadCount(); n != 1 {
		t.Errorf("PadCount = %d, want 1 (push→pop)", n)
	}
}

func TestPadIgnoresNonFallthrough(t *testing.T) {
	b := NewBuilder()
	b.EmitAt("start", I{LC: microcode.LCLoadT, ALU: microcode.ALUAplus1, A: microcode.ASelT, Flow: Goto("elsewhere")})
	b.EmitAt("next", I{A: microcode.ASelT, LC: microcode.LCLoadT}) // not reached from #0
	b.Halt()
	b.EmitAt("elsewhere", I{Flow: Self()})
	if n := b.PadCount(); n != 0 {
		t.Errorf("PadCount = %d, want 0", n)
	}
}

func TestPadPreservesLabels(t *testing.T) {
	b := NewBuilder()
	b.EmitAt("start", masm0Const(5, microcode.LCLoadT))
	b.EmitAt("mid", I{ALU: microcode.ALUAplus1, A: microcode.ASelT, LC: microcode.LCLoadT})
	b.Emit(I{Flow: Goto("start")})
	padded := b.PaddedForNoBypass()
	p, err := padded.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Entry("mid"); err != nil {
		t.Fatal(err)
	}
}

func TestPadShifterReadsRMAndT(t *testing.T) {
	b := NewBuilder()
	b.Label("start")
	b.Emit(I{ALU: microcode.ALUAplus1, A: microcode.ASelRM, R: 4, LC: microcode.LCLoadRM})
	b.Emit(I{FF: microcode.FFShiftNoMask, R: 4, LC: microcode.LCLoadT})
	b.Emit(I{FF: microcode.FFShiftNoMask, R: 4, LC: microcode.LCLoadT}) // T hazard via shifter
	b.Halt()
	if n := b.PadCount(); n != 2 {
		t.Errorf("PadCount = %d, want 2", n)
	}
}
