package masm

import (
	"fmt"

	"dorado/internal/microcode"
)

// buildAtoms derives the rigid-offset and same-page constraints from every
// instruction's flow, then materializes atoms and clusters.
func (a *assembly) buildAtoms() error {
	s := newAtomSet(len(a.insts))
	type pagePair struct{ x, y int }
	var samePage []pagePair

	for _, in := range a.insts {
		switch in.Flow.Kind {
		case FlowSeq:
			succ, err := a.follower(in)
			if err != nil {
				return err
			}
			if in.ffBusy() {
				samePage = append(samePage, pagePair{in.index, succ.index})
			}
		case FlowGoto:
			t, err := a.lookup(in.Flow.Target, in)
			if err != nil {
				return err
			}
			if in.ffBusy() {
				samePage = append(samePage, pagePair{in.index, t.index})
			}
		case FlowSelf, FlowReturn, FlowIFUJump:
			// No placement constraints.
		case FlowCall:
			callee, err := a.lookup(in.Flow.Target, in)
			if err != nil {
				return err
			}
			cont, err := a.follower(in)
			if err != nil {
				return fmt.Errorf("masm: call at %s has no continuation: %v", describe(in), err)
			}
			// LINK ← THISPC+1: the continuation must physically follow the
			// call (§6.2.3, and the "special subroutine locations" of §7).
			if err := s.bind(in.index, cont.index, 1, "call continuation"); err != nil {
				return err
			}
			if in.ffBusy() {
				samePage = append(samePage, pagePair{in.index, callee.index})
			}
		case FlowBranch:
			els, err := a.lookup(in.Flow.Else, in)
			if err != nil {
				return err
			}
			then, err := a.lookup(in.Flow.Then, in)
			if err != nil {
				return err
			}
			if els == then {
				return fmt.Errorf("masm: branch at %s has identical targets; use Goto", describe(in))
			}
			if err := s.bind(els.index, then.index, 1, "branch pair"); err != nil {
				return err
			}
			if err := s.align(els.index, 2, 0, "branch false target even"); err != nil {
				return err
			}
			// Branch targets live in the branch's own page (§5.5).
			samePage = append(samePage, pagePair{in.index, els.index})
		case FlowDispatch8:
			base := in.d8table[0]
			for k, tr := range in.d8table[1:] {
				if err := s.bind(base.index, tr.index, k+1, "dispatch8 table"); err != nil {
					return err
				}
			}
			if err := s.align(base.index, 8, 0, "dispatch8 table 8-aligned"); err != nil {
				return err
			}
			samePage = append(samePage, pagePair{in.index, base.index})
		case FlowDispatch256:
			// Trampolines are pinned to a reserved region; no atoms.
		default:
			return fmt.Errorf("masm: unknown flow kind %d at %s", in.Flow.Kind, describe(in))
		}
	}

	atoms, byInst, err := s.atoms(len(a.insts))
	if err != nil {
		return err
	}
	cs := newClusterSet(atoms)
	for _, p := range samePage {
		cs.join(byInst[p.x], byInst[p.y])
	}
	a.atoms = s
	a.byInst = byInst
	a.clusterList, err = cs.clusters()
	return err
}

// place assigns every instruction a microstore address.
func (a *assembly) place() error {
	// Reserve DISPATCH256 regions from the top of the store so ordinary
	// code packs from the bottom.
	nextRegion := 15
	for _, r := range a.regions {
		if nextRegion < 0 {
			return fmt.Errorf("masm: out of DISPATCH256 regions")
		}
		r.index = nextRegion
		nextRegion--
		for p := r.index * 16; p < (r.index+1)*16; p++ {
			a.pages[p] = 0xFFFF
		}
		for k, tr := range r.trampolines {
			tr.addr = microcode.Addr(r.index*256 + k)
			tr.placed = true
			tr.pinned = true
		}
	}
	regionLow := (nextRegion + 1) * 16 // first page owned by a region

	for _, cl := range a.clusterList {
		if a.clusterPinned(cl) {
			continue
		}
		placed := false
		for p := 0; p < regionLow && !placed; p++ {
			if offs, ok := tryPage(cl.atoms, a.pages[p]); ok {
				a.commit(cl, p, offs)
				placed = true
			}
		}
		if !placed {
			return fmt.Errorf("masm: microstore full: cannot place a %d-word cluster (%d pages available)",
				cl.words, regionLow)
		}
	}
	return nil
}

// clusterPinned reports whether every member of the cluster was pinned by a
// region reservation (singleton trampoline atoms).
func (a *assembly) clusterPinned(cl *cluster) bool {
	for _, at := range cl.atoms {
		for _, m := range at.members {
			if !a.insts[m].pinned {
				return false
			}
		}
	}
	return true
}

// tryPage searches for base offsets for each atom within one page given the
// occupancy mask. Atoms arrive sorted by decreasing alignment/size, which
// keeps the backtracking shallow.
func tryPage(atoms []*atom, occ uint16) ([]int, bool) {
	offs := make([]int, len(atoms))
	var rec func(k int, occ uint16) bool
	rec = func(k int, occ uint16) bool {
		if k == len(atoms) {
			return true
		}
		at := atoms[k]
		for base := at.alignRem; base+at.span <= microcode.PageSize; base += at.alignMod {
			var mask uint16
			for _, o := range at.offsets {
				mask |= 1 << uint(base+o)
			}
			if occ&mask != 0 {
				continue
			}
			offs[k] = base
			if rec(k+1, occ|mask) {
				return true
			}
		}
		return false
	}
	if rec(0, occ) {
		return offs, true
	}
	return nil, false
}

// commit records the chosen placement of a cluster in page p.
func (a *assembly) commit(cl *cluster, p int, offs []int) {
	for k, at := range cl.atoms {
		for j, m := range at.members {
			w := offs[k] + at.offsets[j]
			a.insts[m].addr = microcode.MakeAddr(uint8(p), uint8(w))
			a.insts[m].placed = true
			a.pages[p] |= 1 << uint(w)
		}
	}
}
