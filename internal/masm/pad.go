package masm

import "dorado/internal/microcode"

// PaddedForNoBypass returns a copy of the builder's program with a no-op
// inserted between every pair of consecutive instructions where the second
// reads a register the first writes.
//
// This is the schedule a microcoder had to produce for the Model-0 Dorado,
// whose bypass logic had gaps (§5.6): "we omitted bypassing logic in a few
// places, and required the microcoder to avoid these cases. The result was
// a number of subtle bugs and a significant loss of performance." Running
// the padded program on the normal machine measures exactly that loss
// (experiment E10); running the *unpadded* program with core's NoBypass
// option reproduces the bugs.
//
// The hazard analysis is static and follows emission order: a pad is
// inserted only when the writer falls through (FlowSeq) or branches with an
// implicit false target (the inserted no-op becomes the new false target,
// preserving the branch-pair structure). Dependencies reached only through
// explicit jumps are not padded — like the real Model-0 microcoders, code
// relying on those is expected to be restructured, not padded.
func (b *Builder) PaddedForNoBypass() *Builder {
	out := NewBuilder()
	out.err = b.err
	for i, in := range b.insts {
		for _, l := range in.labels {
			out.Label(l)
		}
		out.Emit(in.I)
		fallsThrough := in.Flow.Kind == FlowSeq ||
			(in.Flow.Kind == FlowBranch && in.Flow.Else == "") ||
			(in.Flow.Kind == FlowCall) // the continuation runs next
		if !fallsThrough || i+1 >= len(b.insts) {
			continue
		}
		if hazard(in.I, b.insts[i+1].I) {
			out.Emit(I{})
		}
	}
	return out
}

// PadCount reports how many no-ops PaddedForNoBypass would insert.
func (b *Builder) PadCount() int {
	n := 0
	for i, in := range b.insts {
		fallsThrough := in.Flow.Kind == FlowSeq ||
			(in.Flow.Kind == FlowBranch && in.Flow.Else == "") ||
			in.Flow.Kind == FlowCall
		if fallsThrough && i+1 < len(b.insts) && hazard(in.I, b.insts[i+1].I) {
			n++
		}
	}
	return n
}

// hazard reports whether instruction b reads state that instruction a
// writes through the register file (the paths Model 0 failed to bypass:
// RM, T, and the stack).
func hazard(a, b I) bool {
	// The Block bit is the task-0 stack modifier; this pass is applied to
	// emulator (task 0) microcode, where Block never means "release".
	writesT := a.LC.LoadsT()
	stackA := a.Block
	writesRM := a.LC.LoadsRM() && !stackA
	touchesStackA := stackA // a write or pointer adjustment

	if writesT && readsT(b) {
		return true
	}
	stackB := b.Block
	if touchesStackA && stackB {
		return true // stack pointer / top-of-stack dependency
	}
	if writesRM {
		if stackB {
			return false // stack replaces RM on both sides
		}
		wIdx := a.R & 0xF
		if !a.HasConst && a.FF >= microcode.FFRMDestBase && a.FF < microcode.FFRMDestBase+16 {
			wIdx = a.FF & 0xF // redirected destination
		}
		switch b.A {
		case microcode.ASelRM, microcode.ASelFetch, microcode.ASelStore:
			if b.R&0xF == wIdx {
				return true
			}
		}
		if readsRMOnB(b) && b.R&0xF == wIdx {
			return true
		}
		if readsRMViaShifter(b) && b.R&0xF == wIdx {
			return true
		}
	}
	return false
}

// readsRMViaShifter reports whether i's shifter consumes the RM word (the
// shifter input is RM‖T, §6.3.4).
func readsRMViaShifter(i I) bool {
	if i.HasConst || i.FF == microcode.FFNop {
		return false
	}
	switch i.FF {
	case microcode.FFShiftNoMask, microcode.FFShiftMaskZ, microcode.FFShiftMaskMD:
		return true
	}
	return false
}

// readsT reports whether i consumes T: via the A or B bus, or through the
// shifter (whose 32-bit input is RM‖T, §6.3.4).
func readsT(i I) bool {
	if i.A == microcode.ASelT {
		return true
	}
	if !i.HasConst && i.B == microcode.BSelT {
		return true
	}
	if i.HasConst || i.FF == microcode.FFNop {
		return false
	}
	switch i.FF {
	case microcode.FFShiftNoMask, microcode.FFShiftMaskZ, microcode.FFShiftMaskMD:
		return true
	}
	return false
}

// readsRMOnB reports whether i's B bus reads the RM word.
func readsRMOnB(i I) bool {
	if i.HasConst || i.FF == microcode.FFInput {
		return false // B overridden by a constant or IODATA
	}
	return i.B == microcode.BSelRM
}
