package device

import (
	"dorado/internal/memory"
)

// Display is a fast-I/O output controller: it consumes 16-word blocks of
// bitmap at a fixed rate (the monitor's video rate) from a small block
// buffer, refilled by direct storage→device transfers that bypass the
// cache (§5.8). Its microcode is two instructions per block (§7): one
// Output commanding the next block address, one loop/block instruction.
//
// At CyclesPerBlock=8 the display demands the full storage bandwidth:
// 16 words × 16 bits / (8 × 60 ns) ≈ 533 Mbit/s, the paper's 530 Mbit/s
// figure (§1, §7).
type Display struct {
	Nop
	mem *memory.System

	// CyclesPerBlock is the video-rate consumption interval.
	CyclesPerBlock int
	// BufferBlocks is the device FIFO capacity in blocks.
	BufferBlocks int

	base    uint32   // VA of block 0 (Go-level configuration)
	pending []uint32 // commanded block VAs awaiting storage transfer
	pHead   int      // drained prefix of pending (compacted when empty)
	filled  int      // blocks in the FIFO

	consumeAt uint64
	started   bool

	blocksMoved uint64
	underruns   uint64
	checksum    uint32
}

// NewDisplay builds a display controller on the given task.
func NewDisplay(task int, mem *memory.System, cyclesPerBlock, bufferBlocks int) *Display {
	if bufferBlocks <= 0 {
		bufferBlocks = 4
	}
	return &Display{
		Nop:            Nop{TaskNum: task},
		mem:            mem,
		CyclesPerBlock: cyclesPerBlock,
		BufferBlocks:   bufferBlocks,
	}
}

// SetBase points the display at the bitmap's VA. Microcode block addresses
// (Output values) are word offsets from this base.
func (d *Display) SetBase(va uint32) { d.base = va }

// Wakeup implements Device: request service while the pipeline (commanded +
// buffered blocks) has room — the display must stay ahead of the beam.
func (d *Display) Wakeup() bool {
	return len(d.pending)-d.pHead+d.filled < d.BufferBlocks
}

// Output implements Device: microcode commands the transfer of the block at
// word offset v (the paper's display microcode sends a block address and
// bumps its pointer in one instruction). The queue compacts whenever it
// drains, so in steady state append reuses the same backing array.
func (d *Display) Output(v uint16, now uint64) {
	if d.pHead == len(d.pending) {
		d.pending, d.pHead = d.pending[:0], 0
	}
	d.pending = append(d.pending, d.base+uint32(v))
}

// Tick implements Device: move one pending block from storage when the
// storage pipe is free, and consume buffered blocks at the video rate.
func (d *Display) Tick(now uint64) {
	if !d.started {
		d.started = true
		d.consumeAt = now + uint64(d.CyclesPerBlock)
	}
	if d.pHead < len(d.pending) && d.filled < d.BufferBlocks {
		if blk, ok := d.mem.FastRead(d.pending[d.pHead], now); ok {
			d.pHead++
			d.filled++
			d.blocksMoved++
			for _, w := range blk {
				d.checksum = d.checksum*31 + uint32(w)
			}
		}
	}
	if now >= d.consumeAt {
		d.consumeAt += uint64(d.CyclesPerBlock)
		if d.filled > 0 {
			d.filled--
		} else {
			d.underruns++
		}
	}
}

// BlocksMoved returns the number of blocks transferred from storage.
func (d *Display) BlocksMoved() uint64 { return d.blocksMoved }

// Underruns returns the number of video intervals with no data (0 when the
// system keeps up with the demanded bandwidth).
func (d *Display) Underruns() uint64 { return d.underruns }

// Checksum fingerprints all transferred data (validates that fast I/O reads
// the bytes the processor wrote).
func (d *Display) Checksum() uint32 { return d.checksum }
