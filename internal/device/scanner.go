package device

import (
	"dorado/internal/memory"
)

// Scanner is a fast-I/O *input* controller — the inverse of Display: it
// produces 16-word blocks at a fixed rate (a scanner or frame grabber, one
// of §3's "raster scanned" class of devices) and transfers them directly
// into storage without polluting the cache. Its microcode mirrors the
// display's: one Output commanding the destination block address, one
// block instruction.
type Scanner struct {
	Nop
	mem *memory.System

	// CyclesPerBlock is the capture rate.
	CyclesPerBlock int
	// BufferBlocks is the device FIFO capacity.
	BufferBlocks int

	base    uint32
	filled  int      // captured blocks waiting for a destination
	dests   []uint32 // commanded destination VAs
	seq     uint16   // generated pixel pattern
	writeAt uint64
	started bool

	blocksMoved uint64
	overruns    uint64
}

// NewScanner builds a scanner on the given task.
func NewScanner(task int, mem *memory.System, cyclesPerBlock, bufferBlocks int) *Scanner {
	if bufferBlocks <= 0 {
		bufferBlocks = 4
	}
	return &Scanner{
		Nop:            Nop{TaskNum: task},
		mem:            mem,
		CyclesPerBlock: cyclesPerBlock,
		BufferBlocks:   bufferBlocks,
	}
}

// SetBase sets the VA that microcode block offsets are relative to.
func (d *Scanner) SetBase(va uint32) { d.base = va }

// Wakeup implements Device: request service while captured blocks wait for
// destinations.
func (d *Scanner) Wakeup() bool { return d.filled > len(d.dests) }

// Output implements Device: microcode supplies the next destination block
// offset.
func (d *Scanner) Output(v uint16, now uint64) {
	d.dests = append(d.dests, d.base+uint32(v))
}

// Tick implements Device: capture at the fixed rate; drain captured blocks
// into storage as destinations and storage cycles allow.
func (d *Scanner) Tick(now uint64) {
	if !d.started {
		d.started = true
		d.writeAt = now + uint64(d.CyclesPerBlock)
	}
	if now >= d.writeAt {
		d.writeAt += uint64(d.CyclesPerBlock)
		if d.filled < d.BufferBlocks {
			d.filled++
		} else {
			d.overruns++ // pixels lost: the processor fell behind
		}
	}
	if d.filled > 0 && len(d.dests) > 0 {
		var blk [memory.LineWords]uint16
		for i := range blk {
			d.seq++
			blk[i] = d.seq
		}
		if d.mem.FastWrite(d.dests[0], blk, now) {
			d.dests = d.dests[1:]
			d.filled--
			d.blocksMoved++
		}
	}
}

// BlocksMoved returns the blocks written to storage.
func (d *Scanner) BlocksMoved() uint64 { return d.blocksMoved }

// Overruns returns the capture intervals lost to a full FIFO.
func (d *Scanner) Overruns() uint64 { return d.overruns }
