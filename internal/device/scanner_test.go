package device

import (
	"testing"

	"dorado/internal/memory"
)

func TestScannerWritesBlocks(t *testing.T) {
	m, err := memory.New(memory.Config{})
	if err != nil {
		t.Fatal(err)
	}
	d := NewScanner(12, m, 16, 2)
	d.SetBase(0x9000)
	// Command two destinations up front.
	d.Output(0, 0)
	d.Output(16, 0)
	for now := uint64(0); now < 200; now++ {
		d.Tick(now)
	}
	if d.BlocksMoved() != 2 {
		t.Fatalf("moved %d blocks", d.BlocksMoved())
	}
	// Sequential pixel pattern landed in storage.
	if m.Peek(0x9000) != 1 || m.Peek(0x9000+16) != 17 {
		t.Errorf("block data = %d, %d", m.Peek(0x9000), m.Peek(0x9000+16))
	}
}

func TestScannerWakeupAndOverrun(t *testing.T) {
	m, _ := memory.New(memory.Config{})
	d := NewScanner(12, m, 4, 2)
	for now := uint64(0); now < 100; now++ {
		d.Tick(now)
	}
	if !d.Wakeup() {
		t.Error("scanner with captured blocks not requesting service")
	}
	if d.Overruns() == 0 {
		t.Error("unserviced scanner never overran")
	}
	// Providing destinations drains the FIFO and clears the request.
	d.Output(0, 100)
	d.Output(16, 100)
	for now := uint64(100); now < 140; now++ {
		d.Tick(now)
	}
	if d.BlocksMoved() == 0 {
		t.Error("no blocks moved after destinations arrived")
	}
}

func TestScannerInvalidatesCache(t *testing.T) {
	m, _ := memory.New(memory.Config{})
	// Warm the destination line with processor data.
	m.StartRead(0, 0x9000, 0)
	m.MD(0, 100)
	d := NewScanner(12, m, 8, 2)
	d.SetBase(0x9000)
	d.Output(0, 0)
	for now := uint64(0); now < 100; now++ {
		d.Tick(now)
	}
	// The processor's next read must see the scanner's data.
	m.StartRead(0, 0x9000, 200)
	if got := m.MD(0, 300); got != 1 {
		t.Errorf("processor read %d after fast write, want 1", got)
	}
}
