// Package device models Dorado I/O controllers.
//
// The Dorado shares its processor among device controllers instead of
// giving each controller DMA hardware (§4 of the paper): a controller is a
// small amount of hardware (modeled here) plus microcode running in one of
// the 16 priority tasks (written against internal/masm and run by
// internal/core). The hardware side:
//
//   - raises a *wakeup request* when it needs service; the processor's task
//     pipeline arbitrates and switches to the controller's task (§5.1–5.2);
//   - watches the NEXT bus to learn that it is about to be served and drops
//     its wakeup at the right moment (§6.2.1: "The device cannot remove the
//     wakeup until it knows that the task is running — by seeing its number
//     on NEXT");
//   - exchanges data with microcode over the IODATA bus (FF Input/Output,
//     §5.8 slow I/O), and/or transfers 16-word blocks directly to storage
//     (fast I/O).
//
// The concrete devices reproduce the paper's workloads: Disk (10 Mbit/s
// slow I/O, §7), Display (fast I/O at up to full storage bandwidth, §7),
// a slower serial link standing in for the Ethernet, a Loopback device for
// peak slow-I/O measurements, and a Pulse timer for latency probes.
package device

import "dorado/internal/state"

// Device is the hardware half of a controller, driven by the processor
// simulation one cycle at a time.
type Device interface {
	// Task returns the controller's task number (1–15; higher = more
	// urgent, §5.1).
	Task() int
	// Tick advances the device one machine cycle.
	Tick(now uint64)
	// Wakeup reports the state of the task's wakeup request line.
	Wakeup() bool
	// NotifyNext tells the device its task number is on the NEXT bus: the
	// processor will run its microcode next cycle (§6.2.1).
	NotifyNext(now uint64)
	// Input answers an FF Input: one word from device to processor.
	Input(now uint64) uint16
	// Output answers an FF Output: one word from processor to device.
	Output(v uint16, now uint64)
	// Control answers an FF DevCtl: a command word from the processor.
	Control(v uint16, now uint64)
	// Atten reports the device's attention line (the IOAtten branch
	// condition).
	Atten() bool
	// SaveState appends the device's mutable state (FIFOs, timers,
	// counters) to a machine snapshot. Devices with no mutable state
	// inherit the no-op from Nop.
	SaveState(e *state.Encoder)
	// LoadState restores what SaveState wrote. The decoder is already
	// positioned at this device's data.
	LoadState(d *state.Decoder)
}

// Idler is an optional Device extension for time-driven controllers. The
// scheduler calls IdleUntil(now) immediately after a Tick(now)/Wakeup()
// scan; the device returns the first cycle q at which it must be consulted
// again, promising that for every cycle t with now < t < q, Tick(t) would
// change no state and Wakeup() would stay false. A device that cannot make
// the promise (it is mid-transfer, or its wakeup line is up) returns now —
// the scheduler then scans it every cycle, which is always correct.
//
// The superblock-translated execution path uses the promise to hoist the
// per-cycle device scan out of fused loops while every attached controller
// is between events; the generic cycle loop never relies on it, and a
// device that does not implement Idler simply disables the optimization.
type Idler interface {
	IdleUntil(now uint64) uint64
}

// Nop is a Device with no behavior; embed it to implement only what a
// device needs.
type Nop struct{ TaskNum int }

// Task implements Device.
func (n *Nop) Task() int { return n.TaskNum }

// Tick implements Device.
func (*Nop) Tick(uint64) {}

// Wakeup implements Device.
func (*Nop) Wakeup() bool { return false }

// NotifyNext implements Device.
func (*Nop) NotifyNext(uint64) {}

// Input implements Device.
func (*Nop) Input(uint64) uint16 { return 0 }

// Output implements Device.
func (*Nop) Output(uint16, uint64) {}

// Control implements Device.
func (*Nop) Control(uint16, uint64) {}

// Atten implements Device.
func (*Nop) Atten() bool { return false }

// SaveState implements Device: no mutable state.
func (*Nop) SaveState(*state.Encoder) {}

// LoadState implements Device: no mutable state.
func (*Nop) LoadState(*state.Decoder) {}
