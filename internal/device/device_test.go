package device

import (
	"testing"

	"dorado/internal/memory"
)

func TestWordSourceCadence(t *testing.T) {
	d := NewWordSource(9, 10, 2)
	if d.Task() != 9 {
		t.Fatalf("task = %d", d.Task())
	}
	for now := uint64(0); now <= 100; now++ {
		d.Tick(now)
	}
	// Started at 0, first word due at 10, then every 10: words at 10..100.
	if got := d.Produced(); got != 10 {
		t.Errorf("produced %d words in 100 cycles at 1/10", got)
	}
}

func TestWordSourceWakeupThreshold(t *testing.T) {
	d := NewWordSource(9, 5, 2)
	now := uint64(0)
	for ; !d.Wakeup(); now++ {
		if now > 100 {
			t.Fatal("never woke")
		}
		d.Tick(now)
	}
	// Two words buffered; draining one drops the request.
	if v := d.Input(now); v != 0 {
		t.Errorf("first word = %d", v)
	}
	if d.Wakeup() {
		t.Error("wakeup held with one word below threshold")
	}
	if v := d.Input(now); v != 1 {
		t.Errorf("second word = %d", v)
	}
	if d.Consumed() != 2 {
		t.Errorf("consumed = %d", d.Consumed())
	}
}

func TestWordSourceOverrun(t *testing.T) {
	d := NewWordSource(9, 1, 2)
	for now := uint64(0); now < 100; now++ {
		d.Tick(now)
	}
	if d.Overruns() == 0 {
		t.Error("unserviced source never overran")
	}
}

func TestLoopback(t *testing.T) {
	d := NewLoopback(3)
	if d.Wakeup() {
		t.Error("unarmed loopback requesting")
	}
	d.Arm(true)
	if !d.Wakeup() {
		t.Error("armed loopback not requesting")
	}
	a, b := d.Input(0), d.Input(1)
	if b != a+1 {
		t.Errorf("sequence broken: %d, %d", a, b)
	}
	d.Output(0x55AA, 2)
	if d.Last() != 0x55AA {
		t.Errorf("Last = %#04x", d.Last())
	}
	in, out := d.Words()
	if in != 2 || out != 1 {
		t.Errorf("words = %d,%d", in, out)
	}
}

func TestPulseLatencyRecording(t *testing.T) {
	d := NewPulse(12, 50)
	var served int
	for now := uint64(0); now < 500; now++ {
		d.Tick(now)
		if d.Wakeup() {
			// Simulate the processor noticing two cycles later.
			d.NotifyNext(now + 2)
			served++
		}
	}
	lats := d.Latencies()
	if len(lats) != served || served == 0 {
		t.Fatalf("latencies %d, served %d", len(lats), served)
	}
	for _, l := range lats {
		if l != 2 {
			t.Errorf("latency %d, want 2", l)
		}
	}
}

func TestDisplayDemandsAndConsumes(t *testing.T) {
	m, err := memory.New(memory.Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint32(0); i < 64; i++ {
		m.Poke(0x2000+i, uint16(i))
	}
	d := NewDisplay(15, m, 8, 2)
	d.SetBase(0x2000)
	if !d.Wakeup() {
		t.Fatal("empty display not requesting")
	}
	// Command two blocks; wakeup should drop at capacity.
	d.Output(0, 0)
	d.Output(16, 0)
	if d.Wakeup() {
		t.Error("display requesting beyond buffer capacity")
	}
	for now := uint64(1); now < 40; now++ {
		d.Tick(now)
	}
	if d.BlocksMoved() != 2 {
		t.Errorf("blocks moved = %d", d.BlocksMoved())
	}
	if d.Checksum() == 0 {
		t.Error("checksum never accumulated")
	}
}

func TestDisplayUnderrunWhenStarved(t *testing.T) {
	m, _ := memory.New(memory.Config{})
	d := NewDisplay(15, m, 4, 2)
	for now := uint64(0); now < 100; now++ {
		d.Tick(now) // nobody commands blocks
	}
	if d.Underruns() == 0 {
		t.Error("starved display reported no underruns")
	}
}

func TestNopDevice(t *testing.T) {
	var d Device = &Nop{TaskNum: 4}
	if d.Task() != 4 || d.Wakeup() || d.Atten() || d.Input(0) != 0 {
		t.Error("Nop misbehaves")
	}
	d.Tick(0)
	d.Output(1, 0)
	d.Control(1, 0)
	d.NotifyNext(0)
}
