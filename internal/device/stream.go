package device

import "fmt"

// WordSource is a slow-I/O input device that produces one 16-bit word every
// CyclesPerWord cycles into a small FIFO — the shape of the Dorado's disk
// and network receivers. It wakes its task when WordsPerWakeup words are
// available; microcode drains them with FF Input and blocks.
//
// Rates from the paper: the 10 Mbit/s disk produces a word every
// 16 bits / 10 Mbit/s = 1.6 µs ≈ 27 cycles; its microcode takes two words
// per wakeup in three microinstructions, consuming ≈5% of the processor
// (§7). The ≈3 Mbit/s Ethernet is the same device at ≈89 cycles/word.
type WordSource struct {
	Nop
	CyclesPerWord  int
	WordsPerWakeup int

	// The FIFO is a fixed 16-word ring (the hardware cap below), so the
	// per-cycle Tick/Input path never allocates.
	fifo     [16]uint16
	head, n  int
	next     uint16 // generated data pattern
	dueAt    uint64
	overruns uint64 // words dropped because the FIFO was full
	produced uint64
	consumed uint64
	started  bool
}

// NewWordSource builds a word-stream input device on the given task.
func NewWordSource(task, cyclesPerWord, wordsPerWakeup int) *WordSource {
	return &WordSource{
		Nop:            Nop{TaskNum: task},
		CyclesPerWord:  cyclesPerWord,
		WordsPerWakeup: wordsPerWakeup,
	}
}

// Tick implements Device: a new word arrives every CyclesPerWord cycles.
func (d *WordSource) Tick(now uint64) {
	if !d.started {
		d.started = true
		d.dueAt = now + uint64(d.CyclesPerWord)
		return
	}
	if now < d.dueAt {
		return
	}
	d.dueAt += uint64(d.CyclesPerWord)
	if d.n >= len(d.fifo) {
		d.overruns++ // real hardware would lose data; §3's "fast devices
		return       // should not slow down the emulator too much" cuts both ways
	}
	d.fifo[(d.head+d.n)&15] = d.next
	d.n++
	d.next++
	d.produced++
}

// Wakeup implements Device: request service when a service unit is ready.
func (d *WordSource) Wakeup() bool { return d.n >= d.WordsPerWakeup }

// IdleUntil implements Idler: between word arrivals the device is inert —
// Tick returns without touching state until dueAt, and the FIFO level (and
// so the wakeup line) can only drop, via Input, never rise.
func (d *WordSource) IdleUntil(now uint64) uint64 {
	if !d.started || d.Wakeup() {
		return now
	}
	return d.dueAt
}

// Input implements Device: microcode takes one word.
func (d *WordSource) Input(now uint64) uint16 {
	if d.n == 0 {
		return 0xDEAD // reading an empty FIFO is a microcode bug
	}
	v := d.fifo[d.head]
	d.head = (d.head + 1) & 15
	d.n--
	d.consumed++
	return v
}

// Produced returns the number of words generated so far.
func (d *WordSource) Produced() uint64 { return d.produced }

// Consumed returns the number of words the microcode has taken.
func (d *WordSource) Consumed() uint64 { return d.consumed }

// Overruns returns the number of words lost to FIFO overflow (0 when the
// microcode keeps up).
func (d *WordSource) Overruns() uint64 { return d.overruns }

// Loopback is an always-ready slow-I/O device: Input always has data and
// Output always accepts. It measures the peak IODATA rate (one word per
// cycle = 265 Mbit/s, §5.8) without a device-side rate limit.
type Loopback struct {
	Nop
	wake bool
	seq  uint16

	in, out uint64
	last    uint16
}

// NewLoopback builds a loopback device on the given task. It does not
// request wakeups by itself; tests drive its task explicitly or call Arm.
func NewLoopback(task int) *Loopback { return &Loopback{Nop: Nop{TaskNum: task}} }

// Arm raises (or drops) the wakeup line.
func (d *Loopback) Arm(on bool) { d.wake = on }

// Wakeup implements Device.
func (d *Loopback) Wakeup() bool { return d.wake }

// IdleUntil implements Idler: the wakeup line only moves when the host
// calls Arm, never from Tick, so an unarmed loopback is quiet forever and
// an armed one must be scanned every cycle.
func (d *Loopback) IdleUntil(now uint64) uint64 {
	if d.wake {
		return now
	}
	return ^uint64(0)
}

// Input implements Device: an endless counter pattern.
func (d *Loopback) Input(now uint64) uint16 {
	d.in++
	d.seq++
	return d.seq
}

// Output implements Device.
func (d *Loopback) Output(v uint16, now uint64) {
	d.out++
	d.last = v
}

// Words returns the Input and Output word counts.
func (d *Loopback) Words() (in, out uint64) { return d.in, d.out }

// Last returns the last word written to the device.
func (d *Loopback) Last() uint16 { return d.last }

// Pulse wakes its task once every Period cycles and counts how long the
// processor takes to respond — the task-switch latency probe (§6.2.1 says
// a wakeup reaches the running task in a minimum of two cycles).
type Pulse struct {
	Nop
	Period int

	wake    bool
	raised  uint64 // cycle the wakeup was raised
	nextAt  uint64
	lats    []uint64
	started bool
}

// NewPulse builds a periodic wakeup device.
func NewPulse(task, period int) *Pulse {
	return &Pulse{Nop: Nop{TaskNum: task}, Period: period}
}

// Tick implements Device.
func (d *Pulse) Tick(now uint64) {
	if !d.started {
		d.started = true
		d.nextAt = now + uint64(d.Period)
		return
	}
	if !d.wake && now >= d.nextAt {
		d.wake = true
		d.raised = now
		d.nextAt += uint64(d.Period)
	}
}

// Wakeup implements Device.
func (d *Pulse) Wakeup() bool { return d.wake }

// IdleUntil implements Idler: quiet until the next scheduled pulse.
func (d *Pulse) IdleUntil(now uint64) uint64 {
	if !d.started || d.wake {
		return now
	}
	return d.nextAt
}

// NotifyNext implements Device: service is imminent; record the latency and
// drop the request (one service unit per pulse).
func (d *Pulse) NotifyNext(now uint64) {
	if d.wake {
		d.lats = append(d.lats, now-d.raised)
		d.wake = false
	}
}

// Latencies returns the observed wakeup→NEXT latencies in cycles.
func (d *Pulse) Latencies() []uint64 { return d.lats }

// String summarizes the pulse statistics.
func (d *Pulse) String() string {
	return fmt.Sprintf("pulse(task %d, %d wakeups)", d.TaskNum, len(d.lats))
}
