package device

import "dorado/internal/state"

// Device snapshot implementations. These append into the machine's open
// device section (they do not open sections of their own), so each device
// must read back exactly what it wrote. Queues backed by slices are encoded
// in canonical form — only the live entries, with drained prefixes dropped —
// so Snapshot→Restore→Snapshot is byte-identical.

// SaveState implements Device.
func (d *WordSource) SaveState(e *state.Encoder) {
	// The FIFO ring is canonicalized to start at index 0.
	e.U8(uint8(d.n))
	for i := 0; i < d.n; i++ {
		e.U16(d.fifo[(d.head+i)&15])
	}
	e.U16(d.next)
	e.U64(d.dueAt)
	e.U64(d.overruns)
	e.U64(d.produced)
	e.U64(d.consumed)
	e.Bool(d.started)
}

// LoadState implements Device.
func (d *WordSource) LoadState(dec *state.Decoder) {
	d.fifo = [16]uint16{}
	d.head = 0
	d.n = int(dec.U8())
	for i := 0; i < d.n && i < len(d.fifo); i++ {
		d.fifo[i] = dec.U16()
	}
	d.next = dec.U16()
	d.dueAt = dec.U64()
	d.overruns = dec.U64()
	d.produced = dec.U64()
	d.consumed = dec.U64()
	d.started = dec.Bool()
}

// SaveState implements Device.
func (d *Loopback) SaveState(e *state.Encoder) {
	e.Bool(d.wake)
	e.U16(d.seq)
	e.U64(d.in)
	e.U64(d.out)
	e.U16(d.last)
}

// LoadState implements Device.
func (d *Loopback) LoadState(dec *state.Decoder) {
	d.wake = dec.Bool()
	d.seq = dec.U16()
	d.in = dec.U64()
	d.out = dec.U64()
	d.last = dec.U16()
}

// SaveState implements Device.
func (d *Pulse) SaveState(e *state.Encoder) {
	e.Bool(d.wake)
	e.U64(d.raised)
	e.U64(d.nextAt)
	e.Bool(d.started)
	e.U32(uint32(len(d.lats)))
	for _, l := range d.lats {
		e.U64(l)
	}
}

// LoadState implements Device.
func (d *Pulse) LoadState(dec *state.Decoder) {
	d.wake = dec.Bool()
	d.raised = dec.U64()
	d.nextAt = dec.U64()
	d.started = dec.Bool()
	n := dec.U32()
	d.lats = d.lats[:0]
	for i := uint32(0); i < n && dec.Err() == nil; i++ {
		d.lats = append(d.lats, dec.U64())
	}
}

// SaveState implements Device.
func (d *Display) SaveState(e *state.Encoder) {
	e.U32(d.base)
	e.U32(uint32(len(d.pending) - d.pHead))
	for _, va := range d.pending[d.pHead:] {
		e.U32(va)
	}
	e.U32(uint32(d.filled))
	e.U64(d.consumeAt)
	e.Bool(d.started)
	e.U64(d.blocksMoved)
	e.U64(d.underruns)
	e.U32(d.checksum)
}

// LoadState implements Device.
func (d *Display) LoadState(dec *state.Decoder) {
	d.base = dec.U32()
	n := dec.U32()
	d.pending = d.pending[:0]
	d.pHead = 0
	for i := uint32(0); i < n && dec.Err() == nil; i++ {
		d.pending = append(d.pending, dec.U32())
	}
	d.filled = int(dec.U32())
	d.consumeAt = dec.U64()
	d.started = dec.Bool()
	d.blocksMoved = dec.U64()
	d.underruns = dec.U64()
	d.checksum = dec.U32()
}

// SaveState implements Device.
func (d *Scanner) SaveState(e *state.Encoder) {
	e.U32(d.base)
	e.U32(uint32(d.filled))
	e.U32(uint32(len(d.dests)))
	for _, va := range d.dests {
		e.U32(va)
	}
	e.U16(d.seq)
	e.U64(d.writeAt)
	e.Bool(d.started)
	e.U64(d.blocksMoved)
	e.U64(d.overruns)
}

// LoadState implements Device.
func (d *Scanner) LoadState(dec *state.Decoder) {
	d.base = dec.U32()
	d.filled = int(dec.U32())
	n := dec.U32()
	d.dests = d.dests[:0]
	for i := uint32(0); i < n && dec.Err() == nil; i++ {
		d.dests = append(d.dests, dec.U32())
	}
	d.seq = dec.U16()
	d.writeAt = dec.U64()
	d.started = dec.Bool()
	d.blocksMoved = dec.U64()
	d.overruns = dec.U64()
}
