package store

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestPutGetRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("DSNP fake snapshot bytes")
	hash, err := s.Put(data)
	if err != nil {
		t.Fatal(err)
	}
	if hash != Hash(data) || len(hash) != 64 {
		t.Fatalf("hash = %q", hash)
	}
	if !s.Has(hash) {
		t.Error("Has = false after Put")
	}
	got, err := s.Get(hash)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(data) {
		t.Fatalf("Get = %q", got)
	}
	// Idempotent: a second Put of the same content is the same blob.
	again, err := s.Put(data)
	if err != nil || again != hash {
		t.Fatalf("second Put = %q, %v", again, err)
	}
}

func TestGetUnknownAndMalformed(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	missing := Hash([]byte("never stored"))
	if _, err := s.Get(missing); !errors.Is(err, ErrNoBlob) {
		t.Errorf("missing blob: %v", err)
	}
	// Malformed hashes must be rejected before any path is built; the
	// traversal attempt is the case that matters.
	for _, h := range []string{"", "xyz", "../../etc/passwd", strings.Repeat("A", 64)} {
		if _, err := s.Get(h); !errors.Is(err, ErrNoBlob) {
			t.Errorf("Get(%q): %v", h, err)
		}
		if s.Has(h) {
			t.Errorf("Has(%q) = true", h)
		}
	}
}

func TestCorruptBlobDetected(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	hash, err := s.Put([]byte("pristine"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "blobs", hash), []byte("tampered"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(hash); err == nil || !strings.Contains(err.Error(), "corrupt") {
		t.Errorf("corrupt blob read: %v", err)
	}
}

func TestMetaSidecar(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	hash, err := s.Put([]byte("blob"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Meta(hash); !errors.Is(err, ErrNoBlob) {
		t.Errorf("meta before PutMeta: %v", err)
	}
	spec := json.RawMessage(`{"Language":"mesa"}`)
	if err := s.PutMeta(hash, spec); err != nil {
		t.Fatal(err)
	}
	got, err := s.Meta(hash)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(spec) {
		t.Fatalf("meta = %s", got)
	}
	if err := s.PutMeta("nope", spec); !errors.Is(err, ErrNoBlob) {
		t.Errorf("PutMeta malformed hash: %v", err)
	}
}

func TestManifestPersistsAcrossOpen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	hash, err := s.Put([]byte("snapshot"))
	if err != nil {
		t.Fatal(err)
	}
	when := time.Unix(1_700_000_000, 0).UTC()
	for _, e := range []Entry{
		{ID: "s2", Seq: 2, Spec: json.RawMessage(`{}`), Hash: hash, Cycle: 500, ParkedAt: when},
		{ID: "s1", Seq: 1, Spec: json.RawMessage(`{"Language":"mesa"}`), Hash: hash, Cycle: 42, ParkedAt: when},
	} {
		if err := s.SaveSession(e); err != nil {
			t.Fatal(err)
		}
	}

	// A fresh Open over the same directory sees both entries, Seq-sorted.
	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	list := re.Sessions()
	if len(list) != 2 || list[0].ID != "s1" || list[1].ID != "s2" {
		t.Fatalf("sessions = %+v", list)
	}
	if list[0].Cycle != 42 || list[0].Hash != hash || !list[0].ParkedAt.Equal(when) {
		t.Fatalf("entry = %+v", list[0])
	}

	if err := re.DeleteSession("s1"); err != nil {
		t.Fatal(err)
	}
	if err := re.DeleteSession("s1"); err != nil { // idempotent
		t.Fatal(err)
	}
	re2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if list := re2.Sessions(); len(list) != 1 || list[0].ID != "s2" {
		t.Fatalf("after delete = %+v", list)
	}
	// The blob survives session deletion (content-addressed, fork fodder).
	if !re2.Has(hash) {
		t.Error("blob deleted with session")
	}
}

func TestOpenRejectsBadManifest(t *testing.T) {
	dir := t.TempDir()
	if err := os.MkdirAll(filepath.Join(dir, "blobs"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "manifest.json"), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil {
		t.Error("corrupt manifest accepted")
	}
	if err := os.WriteFile(filepath.Join(dir, "manifest.json"), []byte(`{"version":99}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil || !strings.Contains(err.Error(), "version") {
		t.Errorf("future manifest version: %v", err)
	}
}
