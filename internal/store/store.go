// Package store is the durable half of the fleet: a content-addressed
// on-disk snapshot store plus a session manifest, so a doradod restart
// does not lose the parked fleet.
//
// Layout under the root directory:
//
//	blobs/<sha256-hex>         one machine snapshot, stored whole
//	blobs/<sha256-hex>.json    the session Spec that produced it (JSON)
//	sections/<sha256-hex>      one snapshot section body (see section.go)
//	recipes/<sha256-hex>       reassembly recipe for a sectioned snapshot
//	manifest.json              session id → {spec, snapshot hash, cycle}
//
// Blobs are content-addressed: the file name is the SHA-256 of the bytes,
// so identical snapshots share storage, a blob on disk is immutable, and
// any reader can verify integrity by rehashing. A snapshot is stored
// either whole (Put) or as content-addressed sections plus a recipe
// (PutSnapshot, the structural-dedupe path) — the address is the same
// full-document hash either way, and Get reassembles transparently. The
// spec sidecar makes a snapshot self-describing — fork-from-hash rebuilds
// a machine from the sidecar Spec and restores the bytes onto it without
// consulting any session.
//
// The store also manages its own lifecycle: Sweep (gc.go) reclaims
// snapshots unreachable from the manifest once they age past a policy
// threshold, with Pin protecting in-flight readers (a fork between its
// Meta read and its Get, a park between its blob write and its manifest
// entry).
//
// Every write is crash-safe by construction, the same discipline as
// bench.WriteJSONFile: encode into a temporary file in the destination
// directory, fsync, then rename over the final name. A reader (or a
// process killed mid-park) sees either the old document or the new one,
// never a torn one. Ordering makes the manifest trustworthy: the blob and
// its sidecar are durable before the manifest names them, so every hash a
// manifest references exists. The worst a crash leaves behind is an
// unreferenced blob, which is harmless garbage.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// ErrNoBlob reports a Get or Meta for a hash the store does not hold.
var ErrNoBlob = errors.New("store: no such snapshot")

// manifestVersion is the manifest schema generation; a version newer than
// this build fails Open loudly instead of misreading session records.
// Version 2 marks a store that may hold sectioned snapshots (sections/ +
// recipes/, see section.go); the session-record shape is unchanged from
// version 1, so version-1 manifests are still read (and rewritten as
// version 2 on the next flush), while a version-1 build refuses a
// version-2 store rather than missing its sectioned blobs.
const manifestVersion = 2

// Entry is one parked session in the manifest: everything a fresh
// Manager needs to re-list the session and lazily revive it.
type Entry struct {
	// ID is the session id ("s1", "s2", ...).
	ID string `json:"id"`
	// Seq is the session's creation sequence number; a restarted manager
	// resumes its id counter past the highest Seq so new sessions never
	// collide with restored ones.
	Seq uint64 `json:"seq"`
	// Spec is the session's fleet Spec, JSON-encoded by the fleet layer
	// (the store does not depend on the fleet package).
	Spec json.RawMessage `json:"spec"`
	// Hash is the SHA-256 of the parked snapshot blob.
	Hash string `json:"hash"`
	// Cycle is the machine's cycle counter at park time, so listings show
	// progress without touching the blob.
	Cycle uint64 `json:"cycle"`
	// ParkedAt stamps when the snapshot was written.
	ParkedAt time.Time `json:"parked_at"`
}

// manifest is the on-disk session index.
type manifest struct {
	Version  int              `json:"version"`
	Sessions map[string]Entry `json:"sessions"`
}

// Store is a content-addressed snapshot store rooted at one directory.
// It is safe for concurrent use; blob reads take no lock at all (blobs
// are immutable once renamed into place).
type Store struct {
	dir string

	mu   sync.Mutex // guards manifest mutation/rewrite, pins, and Sweep
	m    manifest
	pins map[string]int // hash → refcount; Sweep treats pinned as reachable

	// dedupe and gc are the process-lifetime observability counters
	// behind Stats (section.go) and the dorado_store_* metric families.
	dedupe struct {
		sections atomic.Uint64 // sections PutSnapshot did not rewrite
		bytes    atomic.Uint64 // bytes those sections would have taken
	}
	gc struct {
		runs  atomic.Uint64 // completed Sweep passes
		bytes atomic.Uint64 // bytes Sweep has deleted
	}
}

// Open creates (or reopens) a store rooted at dir, loading the manifest
// if one exists.
func Open(dir string) (*Store, error) {
	for _, sub := range []string{"blobs", "sections", "recipes"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
	}
	s := &Store{dir: dir, m: manifest{Version: manifestVersion, Sessions: map[string]Entry{}}, pins: map[string]int{}}
	data, err := os.ReadFile(s.manifestPath())
	switch {
	case errors.Is(err, os.ErrNotExist):
		return s, nil
	case err != nil:
		return nil, fmt.Errorf("store: %w", err)
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("store: manifest: %w", err)
	}
	// Version 1 manifests (whole-blob-only stores) have the same record
	// shape; read them and upgrade on the next flush. Anything newer than
	// this build is refused.
	if m.Version != manifestVersion && m.Version != 1 {
		return nil, fmt.Errorf("store: manifest version %d, this build reads version %d", m.Version, manifestVersion)
	}
	m.Version = manifestVersion
	if m.Sessions == nil {
		m.Sessions = map[string]Entry{}
	}
	s.m = m
	return s, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

func (s *Store) manifestPath() string { return filepath.Join(s.dir, "manifest.json") }

func (s *Store) blobPath(hash string) string { return filepath.Join(s.dir, "blobs", hash) }

// Hash returns the store's content address for data: lowercase SHA-256
// hex, the blob file name Put would use.
func Hash(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// validHash guards file-name construction: exactly 64 lowercase hex
// characters, so a wire-supplied hash can never escape the blobs
// directory.
func validHash(hash string) bool {
	if len(hash) != 64 {
		return false
	}
	for i := 0; i < len(hash); i++ {
		c := hash[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// Put writes data as a content-addressed blob and returns its hash. A
// blob that already exists is not rewritten — content addressing makes
// the existing bytes provably identical.
func (s *Store) Put(data []byte) (string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.putLocked(data)
}

// putLocked is Put under the store lock. Writes serialize against Sweep
// (which holds the lock for its whole pass), so the exists-check and the
// write are one atomic step with respect to reclamation — a sweep can
// never delete a blob between a writer observing it and relying on it.
func (s *Store) putLocked(data []byte) (string, error) {
	hash := Hash(data)
	path := s.blobPath(hash)
	if _, err := os.Stat(path); err == nil {
		return hash, nil
	}
	if err := writeFileAtomic(path, data); err != nil {
		return "", fmt.Errorf("store: writing blob: %w", err)
	}
	return hash, nil
}

// Get reads the snapshot for hash — a whole blob when one exists, else a
// sectioned snapshot reassembled from its recipe — verifying either way
// that the bytes hash to their name (on-disk corruption fails loudly
// instead of restoring garbage).
func (s *Store) Get(hash string) ([]byte, error) {
	if !validHash(hash) {
		return nil, fmt.Errorf("%w: malformed hash %q", ErrNoBlob, hash)
	}
	data, err := os.ReadFile(s.blobPath(hash))
	if errors.Is(err, os.ErrNotExist) {
		return s.getSectioned(hash)
	}
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	if got := Hash(data); got != hash {
		return nil, fmt.Errorf("store: blob %s corrupt (content hashes to %s)", hash, got)
	}
	return data, nil
}

// Has reports whether the store holds a snapshot for hash, whole or
// sectioned.
func (s *Store) Has(hash string) bool {
	if !validHash(hash) {
		return false
	}
	if _, err := os.Stat(s.blobPath(hash)); err == nil {
		return true
	}
	return s.hasRecipe(hash)
}

// PutMeta attaches JSON metadata (the fleet's session Spec) to a blob as
// its sidecar document, making the blob self-describing for fork-from-
// hash. Call it after Put; like Put it is idempotent in effect (last
// write wins, and all writers for one hash carry equivalent specs).
func (s *Store) PutMeta(hash string, meta json.RawMessage) error {
	if !validHash(hash) {
		return fmt.Errorf("%w: malformed hash %q", ErrNoBlob, hash)
	}
	if err := writeFileAtomic(s.blobPath(hash)+".json", meta); err != nil {
		return fmt.Errorf("store: writing blob meta: %w", err)
	}
	return nil
}

// Meta reads the sidecar metadata stored with PutMeta.
func (s *Store) Meta(hash string) (json.RawMessage, error) {
	if !validHash(hash) {
		return nil, fmt.Errorf("%w: malformed hash %q", ErrNoBlob, hash)
	}
	data, err := os.ReadFile(s.blobPath(hash) + ".json")
	if errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("%w: no metadata for %s", ErrNoBlob, hash)
	}
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return data, nil
}

// SaveSession records (or replaces) a session's manifest entry and
// rewrites the manifest atomically. The caller must have made the entry's
// blob durable first (Put + PutMeta), so a manifest never references a
// missing hash.
func (s *Store) SaveSession(e Entry) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m.Sessions[e.ID] = e
	return s.flushLocked()
}

// DeleteSession removes a session's manifest entry. The blob stays: it is
// content-addressed and may seed forks. Deleting an absent id is a no-op.
func (s *Store) DeleteSession(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.m.Sessions[id]; !ok {
		return nil
	}
	delete(s.m.Sessions, id)
	return s.flushLocked()
}

// Sessions lists every manifest entry in creation (Seq) order.
func (s *Store) Sessions() []Entry {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Entry, 0, len(s.m.Sessions))
	for _, e := range s.m.Sessions {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// flushLocked rewrites manifest.json atomically. Caller holds s.mu.
func (s *Store) flushLocked() error {
	data, err := json.MarshalIndent(s.m, "", "  ")
	if err != nil {
		return fmt.Errorf("store: encoding manifest: %w", err)
	}
	if err := writeFileAtomic(s.manifestPath(), append(data, '\n')); err != nil {
		return fmt.Errorf("store: writing manifest: %w", err)
	}
	return nil
}

// writeFileAtomic is the bench.WriteJSONFile discipline for raw bytes:
// temp file in the destination directory, fsync, rename.
func writeFileAtomic(path string, data []byte) error {
	dir, base := filepath.Split(path)
	f, err := os.CreateTemp(dir, base+".tmp*")
	if err != nil {
		return err
	}
	_, err = f.Write(data)
	if err == nil {
		err = f.Sync()
	}
	if err != nil {
		f.Close()
		os.Remove(f.Name())
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(f.Name())
		return err
	}
	if err := os.Rename(f.Name(), path); err != nil {
		os.Remove(f.Name())
		return err
	}
	return nil
}
