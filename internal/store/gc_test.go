package store

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"dorado/internal/state"
)

// sweepAll runs a Sweep with no age grace — every unreferenced item is a
// candidate — which is what the lifecycle tests need.
func sweepAll(t *testing.T, s *Store) SweepResult {
	t.Helper()
	res, err := s.Sweep(GCPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestSweepKeepsManifestReachable(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	// One whole blob referenced by the manifest, one orphan.
	kept, err := s.Put([]byte("referenced snapshot"))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.PutMeta(kept, json.RawMessage(`{}`)); err != nil {
		t.Fatal(err)
	}
	orphan, err := s.Put([]byte("orphaned snapshot"))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SaveSession(Entry{ID: "s1", Seq: 1, Spec: json.RawMessage(`{}`), Hash: kept}); err != nil {
		t.Fatal(err)
	}

	res := sweepAll(t, s)
	if res.ReclaimedBlobs != 1 || res.ReclaimedBytes == 0 {
		t.Fatalf("sweep = %+v", res)
	}
	if !s.Has(kept) || s.Has(orphan) {
		t.Fatalf("post-sweep: kept=%v orphan=%v", s.Has(kept), s.Has(orphan))
	}
	// The kept blob's sidecar also survived.
	if _, err := s.Meta(kept); err != nil {
		t.Errorf("sidecar of kept blob: %v", err)
	}
	// Idempotent: a second sweep finds nothing.
	if res := sweepAll(t, s); res.ReclaimedBlobs != 0 || res.ReclaimedBytes != 0 {
		t.Fatalf("second sweep = %+v", res)
	}
	st := s.Stats()
	if st.GCRuns != 2 || st.GCReclaimedBytes == 0 {
		t.Fatalf("gc stats = %+v", st)
	}
}

func TestSweepSectionedSnapshots(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	shared := state.RawSection{Tag: "MEM0", Body: bigBody('m', 2048)}
	keptDoc := snapDoc(1, shared, state.RawSection{Tag: "PROC", Body: []byte("kept core")})
	deadDoc := snapDoc(1, shared, state.RawSection{Tag: "PROC", Body: []byte("dead core")})
	keptStat, err := s.PutSnapshot(keptDoc)
	if err != nil {
		t.Fatal(err)
	}
	deadStat, err := s.PutSnapshot(deadDoc)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SaveSession(Entry{ID: "s1", Seq: 1, Spec: json.RawMessage(`{}`), Hash: keptStat.Hash}); err != nil {
		t.Fatal(err)
	}

	res := sweepAll(t, s)
	// The dead recipe goes, along with its private section; the shared
	// section survives because the kept recipe still names it.
	if res.ReclaimedRecipes != 1 || res.ReclaimedSections != 1 {
		t.Fatalf("sweep = %+v", res)
	}
	if s.Has(deadStat.Hash) {
		t.Error("dead sectioned snapshot still readable")
	}
	if got, err := s.Get(keptStat.Hash); err != nil || string(got) != string(keptDoc) {
		t.Fatalf("kept sectioned snapshot after sweep: %v", err)
	}
}

func TestSweepHonorsAgeAndPins(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := s.Put([]byte("unreferenced but fresh"))
	if err != nil {
		t.Fatal(err)
	}
	pinned, err := s.Put([]byte("unreferenced but pinned"))
	if err != nil {
		t.Fatal(err)
	}
	unpin := s.Pin(pinned)
	// Both survive an aged sweep: one is young, one is pinned.
	old := time.Now().Add(-time.Hour)
	if err := os.Chtimes(filepath.Join(dir, "blobs", pinned), old, old); err != nil {
		t.Fatal(err)
	}
	res, err := s.Sweep(GCPolicy{MaxAge: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if res.ReclaimedBlobs != 0 || !s.Has(fresh) || !s.Has(pinned) {
		t.Fatalf("aged sweep = %+v", res)
	}
	// Releasing the pin (idempotently) exposes the old blob; the fresh one
	// is still inside its grace window.
	unpin()
	unpin()
	res, err = s.Sweep(GCPolicy{MaxAge: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if res.ReclaimedBlobs != 1 || s.Has(pinned) || !s.Has(fresh) {
		t.Fatalf("post-unpin sweep = %+v", res)
	}
}

// TestSweepUnreadableReachableRecipe: corruption under a live root must
// stop the section pass rather than cascade into deleting sections some
// other reading of the recipe might still need.
func TestSweepUnreadableReachableRecipe(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	doc := snapDoc(1, state.RawSection{Tag: "AAAA", Body: []byte("body bytes")})
	st, err := s.PutSnapshot(doc)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SaveSession(Entry{ID: "s1", Seq: 1, Spec: json.RawMessage(`{}`), Hash: st.Hash}); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "recipes", st.Hash), []byte("{broken"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Sweep(GCPolicy{}); err == nil {
		t.Fatal("sweep over an unreadable reachable recipe succeeded")
	}
	// The sections behind the broken recipe were not touched.
	if n, _ := dirStats(filepath.Join(dir, "sections"), ""); n != 1 {
		t.Fatalf("sections after aborted sweep = %d", n)
	}
}

// TestManifestV1Upgrade: a version-1 manifest (whole-blob era) opens
// cleanly, and the first flush rewrites it at the current version.
func TestManifestV1Upgrade(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	hash, err := s.Put([]byte("v1-era snapshot"))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SaveSession(Entry{ID: "s1", Seq: 1, Spec: json.RawMessage(`{}`), Hash: hash}); err != nil {
		t.Fatal(err)
	}
	// Rewrite the manifest as the previous generation wrote it.
	raw, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	var m manifest
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	m.Version = 1
	old, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "manifest.json"), old, 0o644); err != nil {
		t.Fatal(err)
	}

	re, err := Open(dir)
	if err != nil {
		t.Fatalf("v1 manifest rejected: %v", err)
	}
	if list := re.Sessions(); len(list) != 1 || list[0].Hash != hash {
		t.Fatalf("sessions from v1 manifest = %+v", list)
	}
	// Any manifest write persists the upgraded version.
	if err := re.SaveSession(Entry{ID: "s2", Seq: 2, Spec: json.RawMessage(`{}`), Hash: hash}); err != nil {
		t.Fatal(err)
	}
	raw, err = os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	var upgraded manifest
	if err := json.Unmarshal(raw, &upgraded); err != nil {
		t.Fatal(err)
	}
	if upgraded.Version != manifestVersion {
		t.Fatalf("manifest version after flush = %d, want %d", upgraded.Version, manifestVersion)
	}
}
