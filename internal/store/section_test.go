package store

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dorado/internal/state"
)

// snapDoc builds a valid snapshot document from (tag, body) pairs under the
// given header version bytes, using the same framing the machine emits.
func snapDoc(version uint16, sections ...state.RawSection) []byte {
	d := state.Doc{
		Header:   []byte{'D', 'S', 'N', 'P', byte(version), byte(version >> 8)},
		Sections: sections,
	}
	return d.Join()
}

func bigBody(fill byte, n int) []byte { return bytes.Repeat([]byte{fill}, n) }

func TestPutSnapshotSectionsAndReassembly(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	doc := snapDoc(1,
		state.RawSection{Tag: "MEM0", Body: bigBody('m', 4096)},
		state.RawSection{Tag: "PROC", Body: bigBody('p', 128)},
	)
	st, err := s.PutSnapshot(doc)
	if err != nil {
		t.Fatal(err)
	}
	if st.Hash != Hash(doc) || !st.Sectioned || st.Sections != 2 || st.DedupedSections != 0 {
		t.Fatalf("first put = %+v", st)
	}
	if !s.Has(st.Hash) {
		t.Error("Has = false for a sectioned snapshot")
	}
	// No whole blob was written; the recipe + sections are the storage.
	if _, err := os.Stat(filepath.Join(dir, "blobs", st.Hash)); !os.IsNotExist(err) {
		t.Errorf("whole blob exists for sectioned snapshot: %v", err)
	}
	got, err := s.Get(st.Hash)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, doc) {
		t.Fatal("reassembled snapshot differs from the original")
	}

	// Idempotent re-put: nothing new written, everything deduped.
	again, err := s.PutSnapshot(doc)
	if err != nil {
		t.Fatal(err)
	}
	if again.NewBytes != 0 || again.DedupedSections != 2 {
		t.Fatalf("idempotent re-put = %+v", again)
	}

	// A second snapshot sharing the big memory section writes only the
	// changed section + recipe — the "re-park stores less" property.
	doc2 := snapDoc(1,
		state.RawSection{Tag: "MEM0", Body: bigBody('m', 4096)},
		state.RawSection{Tag: "PROC", Body: bigBody('q', 128)},
	)
	st2, err := s.PutSnapshot(doc2)
	if err != nil {
		t.Fatal(err)
	}
	if st2.DedupedSections != 1 || st2.DedupedBytes != 4096 {
		t.Fatalf("shared-section put = %+v", st2)
	}
	if st2.NewBytes >= int64(len(doc2))/2 {
		t.Fatalf("re-park wrote %d new bytes for a %d-byte snapshot (dedupe < 50%%)", st2.NewBytes, len(doc2))
	}
	if got2, err := s.Get(st2.Hash); err != nil || !bytes.Equal(got2, doc2) {
		t.Fatalf("second snapshot round trip: %v", err)
	}

	// The process-lifetime counters feed Stats.
	inv := s.Stats()
	if inv.Recipes != 2 || inv.Sections != 3 || inv.SectionsDeduped != 3 {
		t.Fatalf("stats = %+v", inv)
	}
	if inv.DedupedBytes == 0 || inv.Bytes == 0 {
		t.Fatalf("stats bytes = %+v", inv)
	}
}

func TestPutSnapshotWholeBlobFallback(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("not a snapshot document at all")
	st, err := s.PutSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	if st.Sectioned || st.Hash != Hash(data) || st.NewBytes != int64(len(data)) {
		t.Fatalf("fallback put = %+v", st)
	}
	if got, err := s.Get(st.Hash); err != nil || !bytes.Equal(got, data) {
		t.Fatalf("fallback round trip: %v", err)
	}
}

// TestPutSnapshotCrossVersion: the section store is format-agnostic —
// snapshots from different format generations dedupe shared sections and
// reassemble to their exact original bytes (and hence original hashes).
func TestPutSnapshotCrossVersion(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	shared := state.RawSection{Tag: "MEM0", Body: bigBody('m', 2048)}
	v1 := snapDoc(1, shared)
	v2 := snapDoc(2, shared) // same sections, bumped format version
	st1, err := s.PutSnapshot(v1)
	if err != nil {
		t.Fatal(err)
	}
	st2, err := s.PutSnapshot(v2)
	if err != nil {
		t.Fatal(err)
	}
	if st1.Hash == st2.Hash {
		t.Fatal("different format versions hashed identically")
	}
	if st2.DedupedSections != 1 {
		t.Fatalf("shared section not deduped across versions: %+v", st2)
	}
	for _, want := range [][]byte{v1, v2} {
		got, err := s.Get(Hash(want))
		if err != nil || !bytes.Equal(got, want) {
			t.Fatalf("cross-version round trip: %v", err)
		}
	}
}

func TestRecipeVersionRejected(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	doc := snapDoc(1, state.RawSection{Tag: "AAAA", Body: []byte("body")})
	st, err := s.PutSnapshot(doc)
	if err != nil {
		t.Fatal(err)
	}
	// A recipe from a future store build must fail loudly, not reassemble
	// garbage and not claim the snapshot is absent.
	raw, err := os.ReadFile(filepath.Join(dir, "recipes", st.Hash))
	if err != nil {
		t.Fatal(err)
	}
	raw = bytes.Replace(raw, []byte(`"version":1`), []byte(`"version":99`), 1)
	if err := os.WriteFile(filepath.Join(dir, "recipes", st.Hash), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = s.Get(st.Hash)
	if err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("future recipe version: %v", err)
	}
	if errors.Is(err, ErrNoBlob) {
		t.Fatal("unreadable recipe reported as missing blob")
	}
}

func TestGetSectionedCorruptSectionDetected(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	doc := snapDoc(1, state.RawSection{Tag: "AAAA", Body: []byte("pristine body")})
	st, err := s.PutSnapshot(doc)
	if err != nil {
		t.Fatal(err)
	}
	secHash := Hash([]byte("pristine body"))
	if err := os.WriteFile(filepath.Join(dir, "sections", secHash), []byte("tampered body"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(st.Hash); err == nil || !strings.Contains(err.Error(), "corrupt") {
		t.Errorf("tampered section read: %v", err)
	}
}
