package store

// This file is the structural-dedupe half of the store: instead of
// writing every park as one opaque blob, PutSnapshot content-addresses
// the snapshot's *sections* (the internal/state format is section-framed
// by design) and records a small recipe that names them. Re-parking a
// mostly-unchanged session then writes only the sections that changed —
// typically the processor core and a couple of device FIFOs — while the
// big memory images dedupe against the previous park.
//
// Layout additions under the store root:
//
//	sections/<sha256-hex>     one section body, named by its own hash
//	recipes/<sha256-hex>      JSON recipe for the snapshot whose full
//	                          bytes hash to the file name
//
// The public content address is unchanged: it is still the SHA-256 of
// the complete snapshot document, so every hash that worked against a
// whole-blob store (fork-from-hash, GET /v1/snapshots/{hash}, manifest
// entries) works identically against a sectioned one. Get reassembles
// transparently — header, then each section reframed in recipe order —
// and verifies the result hashes to its name, which subsumes verifying
// every individual section.
//
// The recipe document carries its own format version. A recipe version
// this build does not understand fails Get loudly (ErrNoBlob would lie:
// the data exists, this build just cannot read it), exactly the
// strictness discipline of internal/state.

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"dorado/internal/state"
)

// recipeVersion is the recipe schema generation. Bump it on any change to
// the recipe document layout; readers accept exactly the versions they
// know how to reassemble.
const recipeVersion = 1

// recipe is the on-disk reassembly instruction for one sectioned
// snapshot: the verbatim document header plus the ordered section list.
type recipe struct {
	Version int `json:"version"`
	// Header is the snapshot's pre-section prefix (magic + format
	// version), base64 in JSON.
	Header []byte `json:"header"`
	// Sections name the section blobs in document order.
	Sections []recipeSection `json:"sections"`
}

// recipeSection is one section reference in a recipe.
type recipeSection struct {
	// Tag is the four-byte section tag.
	Tag string `json:"tag"`
	// Hash is the SHA-256 of the section body, the file name under
	// sections/.
	Hash string `json:"hash"`
}

func (s *Store) sectionPath(hash string) string { return filepath.Join(s.dir, "sections", hash) }

func (s *Store) recipePath(hash string) string { return filepath.Join(s.dir, "recipes", hash) }

// PutStats reports what one PutSnapshot actually wrote — the dedupe
// accounting behind the dorado_store_sections_deduped metrics family and
// the "re-parking stores less" acceptance check.
type PutStats struct {
	// Hash is the snapshot's content address (SHA-256 of the full
	// document), identical to what Put would have returned.
	Hash string
	// Sectioned reports that the snapshot was stored as sections + recipe;
	// false means the bytes did not parse as a snapshot document and were
	// stored as one whole blob.
	Sectioned bool
	// Sections is the number of sections in the document.
	Sections int
	// DedupedSections counts sections that already existed in the store
	// and were not rewritten.
	DedupedSections int
	// NewBytes is the number of payload bytes actually written (new
	// sections plus the recipe, or the whole blob on fallback).
	NewBytes int64
	// DedupedBytes is the number of section bytes shared with blobs
	// already in the store.
	DedupedBytes int64
}

// PutSnapshot stores a machine snapshot with section-level dedupe: each
// section body becomes (or joins) a content-addressed blob under
// sections/, and a recipe under recipes/<full-hash> records how to
// reassemble the document. Bytes that do not parse as a snapshot document
// fall back to a whole Put. Like Put it is idempotent: a snapshot the
// store already holds (whole or sectioned) writes nothing.
func (s *Store) PutSnapshot(data []byte) (PutStats, error) {
	// The whole write holds the store lock, serializing against Sweep: the
	// dedupe decision ("this section already exists, skip it") and the
	// recipe write that depends on it must see a frozen reclamation state,
	// or a concurrent sweep could delete a section between the two.
	s.mu.Lock()
	defer s.mu.Unlock()
	st := PutStats{Hash: Hash(data)}
	if s.Has(st.Hash) {
		doc, err := state.Split(data)
		if err == nil {
			st.Sectioned = true
			st.Sections = len(doc.Sections)
			st.DedupedSections = len(doc.Sections)
			for _, sec := range doc.Sections {
				st.DedupedBytes += int64(len(sec.Body))
			}
		}
		s.dedupe.sections.Add(uint64(st.DedupedSections))
		s.dedupe.bytes.Add(uint64(st.DedupedBytes))
		return st, nil
	}
	doc, err := state.Split(data)
	if err != nil {
		// Not a snapshot document; store it whole so PutSnapshot accepts
		// anything Put accepts.
		if _, perr := s.putLocked(data); perr != nil {
			return PutStats{}, perr
		}
		st.NewBytes = int64(len(data))
		return st, nil
	}
	st.Sectioned = true
	st.Sections = len(doc.Sections)
	r := recipe{Version: recipeVersion, Header: doc.Header}
	for _, sec := range doc.Sections {
		sh := Hash(sec.Body)
		r.Sections = append(r.Sections, recipeSection{Tag: sec.Tag, Hash: sh})
		if _, err := os.Stat(s.sectionPath(sh)); err == nil {
			st.DedupedSections++
			st.DedupedBytes += int64(len(sec.Body))
			continue
		}
		if err := writeFileAtomic(s.sectionPath(sh), sec.Body); err != nil {
			return PutStats{}, fmt.Errorf("store: writing section: %w", err)
		}
		st.NewBytes += int64(len(sec.Body))
	}
	enc, err := json.Marshal(r)
	if err != nil {
		return PutStats{}, fmt.Errorf("store: encoding recipe: %w", err)
	}
	// Recipe last: a crash before this rename leaves only unreferenced
	// section blobs (GC fodder), never a recipe naming missing sections.
	if err := writeFileAtomic(s.recipePath(st.Hash), enc); err != nil {
		return PutStats{}, fmt.Errorf("store: writing recipe: %w", err)
	}
	st.NewBytes += int64(len(enc))
	s.dedupe.sections.Add(uint64(st.DedupedSections))
	s.dedupe.bytes.Add(uint64(st.DedupedBytes))
	return st, nil
}

// readRecipe loads and validates the recipe for hash. A recipe from a
// future format generation fails loudly rather than reassembling garbage.
func (s *Store) readRecipe(hash string) (*recipe, error) {
	data, err := os.ReadFile(s.recipePath(hash))
	if err != nil {
		return nil, err
	}
	var r recipe
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("store: recipe %s: %w", hash, err)
	}
	if r.Version != recipeVersion {
		return nil, fmt.Errorf("store: recipe %s version %d, this build reads version %d", hash, r.Version, recipeVersion)
	}
	return &r, nil
}

// assemble reconstructs a sectioned snapshot from its recipe and verifies
// the result hashes to its name.
func (s *Store) assemble(hash string) ([]byte, error) {
	r, err := s.readRecipe(hash)
	if err != nil {
		return nil, err
	}
	doc := state.Doc{Header: r.Header}
	for _, sec := range r.Sections {
		if !validHash(sec.Hash) {
			return nil, fmt.Errorf("store: recipe %s: malformed section hash %q", hash, sec.Hash)
		}
		body, err := os.ReadFile(s.sectionPath(sec.Hash))
		if err != nil {
			return nil, fmt.Errorf("store: recipe %s section %s: %w", hash, sec.Tag, err)
		}
		doc.Sections = append(doc.Sections, state.RawSection{Tag: sec.Tag, Body: body})
	}
	data := doc.Join()
	if got := Hash(data); got != hash {
		return nil, fmt.Errorf("store: snapshot %s corrupt (reassembly hashes to %s)", hash, got)
	}
	return data, nil
}

// Stats is the operator-facing inventory of a store — what GET /v1/store
// serves and the dorado_store_* metric families export. Counts and bytes
// come from a directory walk at call time (the store is small by
// construction: hundreds of files, not millions); the dedupe and GC
// counters are process-lifetime atomics.
type Stats struct {
	// Dir is the store's root directory.
	Dir string `json:"dir"`
	// Sessions is the number of manifest entries (parked or adopted
	// sessions the manifest still references).
	Sessions int `json:"sessions"`
	// Blobs counts whole snapshot blobs under blobs/ (sidecars excluded).
	Blobs int `json:"blobs"`
	// Recipes counts sectioned snapshots under recipes/.
	Recipes int `json:"recipes"`
	// Sections counts section blobs under sections/.
	Sections int `json:"sections"`
	// Bytes is the payload total: whole blobs + sections + recipes
	// (spec sidecars excluded).
	Bytes int64 `json:"bytes"`
	// SectionsDeduped counts sections PutSnapshot skipped because an
	// identical blob already existed (process lifetime).
	SectionsDeduped uint64 `json:"sections_deduped"`
	// DedupedBytes is the byte total of those skipped sections.
	DedupedBytes uint64 `json:"deduped_bytes"`
	// GCRuns counts completed Sweep passes (process lifetime).
	GCRuns uint64 `json:"gc_runs"`
	// GCReclaimedBytes is the byte total Sweep has deleted.
	GCReclaimedBytes uint64 `json:"gc_reclaimed_bytes"`
}

// dirStats totals one directory's files, skipping names with the given
// suffix exclusion (the .json spec sidecars under blobs/).
func dirStats(dir, excludeSuffix string) (n int, bytes int64) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return 0, 0
	}
	for _, e := range ents {
		if e.IsDir() || (excludeSuffix != "" && filepath.Ext(e.Name()) == excludeSuffix) {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		n++
		bytes += info.Size()
	}
	return n, bytes
}

// Stats inventories the store. Safe for concurrent use; it reads the
// manifest under the store lock and walks the payload directories without
// one (blobs are immutable; a file appearing or vanishing mid-walk skews
// a count by one, never corrupts it).
func (s *Store) Stats() Stats {
	s.mu.Lock()
	sessions := len(s.m.Sessions)
	s.mu.Unlock()
	st := Stats{
		Dir:              s.dir,
		Sessions:         sessions,
		SectionsDeduped:  s.dedupe.sections.Load(),
		DedupedBytes:     s.dedupe.bytes.Load(),
		GCRuns:           s.gc.runs.Load(),
		GCReclaimedBytes: s.gc.bytes.Load(),
	}
	var b int64
	st.Blobs, b = dirStats(filepath.Join(s.dir, "blobs"), ".json")
	st.Bytes += b
	st.Recipes, b = dirStats(filepath.Join(s.dir, "recipes"), "")
	st.Bytes += b
	st.Sections, b = dirStats(filepath.Join(s.dir, "sections"), "")
	st.Bytes += b
	return st
}

// hasRecipe reports whether a recipe exists for hash (already validated).
func (s *Store) hasRecipe(hash string) bool {
	_, err := os.Stat(s.recipePath(hash))
	return err == nil
}

// getSectioned is Get's fallback when no whole blob exists: reassemble
// from the recipe, mapping a missing recipe onto ErrNoBlob.
func (s *Store) getSectioned(hash string) ([]byte, error) {
	data, err := s.assemble(hash)
	if errors.Is(err, os.ErrNotExist) && !s.hasRecipe(hash) {
		return nil, fmt.Errorf("%w: %s", ErrNoBlob, hash)
	}
	if err != nil {
		return nil, err
	}
	return data, nil
}
