package store

// This file is the reclamation half of the store's lifecycle. Without it
// the store only grows: Destroy keeps blobs as fork fodder, and every
// re-park of a session strands the previous snapshot. Sweep walks the
// payload directories and deletes what nothing references any more —
// with two hard safety guarantees:
//
//  1. Manifest-reachable data is never collected. A snapshot named by any
//     manifest entry is kept, and if it is sectioned, so are its recipe
//     and every section the recipe names.
//  2. In-flight readers are never raced. Pin registers a hash as
//     reachable before its blob is read (fork-from-hash) or before it is
//     written-but-not-yet-manifested (park); Sweep holds the store lock
//     for its whole pass, so a pin either lands before the pass (the data
//     is kept) or after it (the data was either already gone — the reader
//     sees a clean ErrNoBlob — or not yet written and thus not a
//     candidate).
//
// Age is the third brake: only items older than GCPolicy.MaxAge are
// candidates, so a freshly crashed park (blob durable, manifest rename
// lost) has a grace window in which a restarted operator can still fork
// it before it is declared garbage.

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"
)

// GCPolicy parameterizes one Sweep pass.
type GCPolicy struct {
	// MaxAge is the minimum age (by file modification time) an
	// unreferenced item must reach before Sweep reclaims it. Zero (or
	// negative) reclaims every unreferenced item immediately.
	MaxAge time.Duration
}

// SweepResult reports what one Sweep pass did.
type SweepResult struct {
	// Scanned is the number of store files examined (whole blobs and
	// their sidecars, recipes, and sections).
	Scanned int `json:"scanned"`
	// ReclaimedBlobs, ReclaimedRecipes, and ReclaimedSections count the
	// deleted files by kind (spec sidecars ride along with their blob or
	// recipe and are not counted separately).
	ReclaimedBlobs    int `json:"reclaimed_blobs"`
	ReclaimedRecipes  int `json:"reclaimed_recipes"`
	ReclaimedSections int `json:"reclaimed_sections"`
	// ReclaimedBytes is the payload byte total deleted, sidecars included.
	ReclaimedBytes int64 `json:"reclaimed_bytes"`
	// Kept is the number of payload files retained, whether reachable or
	// merely younger than the policy's MaxAge.
	Kept int `json:"kept"`
}

// Pin marks hash as reachable for the duration of an out-of-manifest use
// — a fork reading the blob, a park that has written the blob but not yet
// its manifest entry — and returns the release function. Pins nest
// (refcounted) and block while a Sweep pass runs, which is exactly the
// ordering the safety argument needs.
func (s *Store) Pin(hash string) func() {
	s.mu.Lock()
	s.pins[hash]++
	s.mu.Unlock()
	var once bool
	return func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		if once {
			return
		}
		once = true
		if s.pins[hash]--; s.pins[hash] <= 0 {
			delete(s.pins, hash)
		}
	}
}

// Sweep reclaims every payload file unreachable from the manifest (and
// unpinned) whose modification time is older than policy.MaxAge. It holds
// the store lock for the whole pass — manifest updates and new pins wait
// a few milliseconds — which is what makes the no-lost-snapshot guarantee
// a lock-ordering fact instead of a best-effort race.
func (s *Store) Sweep(policy GCPolicy) (SweepResult, error) {
	s.mu.Lock()
	defer s.mu.Unlock()

	cutoff := time.Now()
	if policy.MaxAge > 0 {
		cutoff = cutoff.Add(-policy.MaxAge)
	}

	// Roots: every manifest hash plus every pinned hash.
	roots := make(map[string]bool, len(s.m.Sessions)+len(s.pins))
	for _, e := range s.m.Sessions {
		roots[e.Hash] = true
	}
	for h := range s.pins {
		roots[h] = true
	}

	var res SweepResult
	// Pass 1: whole blobs. Reachable or young blobs stay; the rest go,
	// sidecar and all.
	if err := s.sweepDir(filepath.Join(s.dir, "blobs"), cutoff, &res, func(name string, young bool) (keep bool) {
		if filepath.Ext(name) == ".json" {
			return true // sidecars are handled with their payload file
		}
		if roots[name] || young {
			return true
		}
		res.ReclaimedBlobs++
		s.removeSidecar(name, &res)
		return false
	}); err != nil {
		return res, err
	}

	// Pass 2: recipes. A recipe survives if its snapshot hash is a root
	// or it is young; every surviving recipe's sections become reachable,
	// so a kept-because-young recipe also anchors its sections.
	liveSections := map[string]bool{}
	if err := s.sweepDir(filepath.Join(s.dir, "recipes"), cutoff, &res, func(name string, young bool) (keep bool) {
		if roots[name] || young {
			if r, err := s.readRecipe(name); err == nil {
				for _, sec := range r.Sections {
					liveSections[sec.Hash] = true
				}
			} else if roots[name] {
				// A reachable recipe that fails to parse is a corruption
				// the sweep must not compound: keep everything under the
				// broadest interpretation by aborting the section pass.
				liveSections[allSectionsLive] = true
			}
			return true
		}
		res.ReclaimedRecipes++
		s.removeSidecar(name, &res)
		return false
	}); err != nil {
		return res, err
	}

	// Pass 3: sections referenced by no surviving recipe.
	if liveSections[allSectionsLive] {
		return res, fmt.Errorf("store: sweep: unreadable reachable recipe; sections not swept")
	}
	if err := s.sweepDir(filepath.Join(s.dir, "sections"), cutoff, &res, func(name string, young bool) (keep bool) {
		if liveSections[name] || young {
			return true
		}
		res.ReclaimedSections++
		return false
	}); err != nil {
		return res, err
	}

	s.gc.runs.Add(1)
	s.gc.bytes.Add(uint64(res.ReclaimedBytes))
	return res, nil
}

// allSectionsLive is the sentinel key sweepDir's recipe pass uses to
// signal "a reachable recipe could not be read; do not sweep sections".
const allSectionsLive = "\x00all"

// sweepDir applies decide to every file in dir, deleting the ones it
// rejects and accounting both outcomes into res. decide receives the file
// name and whether the file is younger than the cutoff.
func (s *Store) sweepDir(dir string, cutoff time.Time, res *SweepResult, decide func(name string, young bool) bool) error {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return fmt.Errorf("store: sweep: %w", err)
	}
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		// writeFileAtomic temp files are another writer's in-flight rename
		// source; deleting one would fail that write. They are transient by
		// construction, so they are simply not sweep candidates.
		if strings.Contains(e.Name(), ".tmp") {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue // vanished mid-walk; nothing to reclaim
		}
		res.Scanned++
		if decide(e.Name(), info.ModTime().After(cutoff)) {
			res.Kept++
			continue
		}
		path := filepath.Join(dir, e.Name())
		if err := os.Remove(path); err != nil {
			if os.IsNotExist(err) {
				continue
			}
			return fmt.Errorf("store: sweep: %w", err)
		}
		res.ReclaimedBytes += info.Size()
	}
	return nil
}

// removeSidecar deletes the .json spec sidecar riding with a reclaimed
// blob or recipe, if one exists, and accounts its bytes.
func (s *Store) removeSidecar(hash string, res *SweepResult) {
	path := s.blobPath(hash) + ".json"
	info, err := os.Stat(path)
	if err != nil {
		return
	}
	if os.Remove(path) == nil {
		res.ReclaimedBytes += info.Size()
	}
}
