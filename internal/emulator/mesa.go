package emulator

import (
	"dorado/internal/masm"
	"dorado/internal/microcode"
)

// Mesa opcode bytes. The set is a reconstruction of the Mesa PrincOps
// flavor the paper's emulator interpreted: a compact stack machine whose
// simple operations map onto one or two microinstructions because the
// hardware evaluation stack, the IFU operand path, and the one-instruction
// memory reference do all the work (§7).
const (
	MesaLL   = 0x01 // LL a:   push local a             (2 µinst)
	MesaSL   = 0x02 // SL a:   pop into local a         (1 µinst)
	MesaLIB  = 0x03 // LIB a:  push literal byte        (1 µinst)
	MesaLIW  = 0x04 // LIW w:  push literal word        (1 µinst)
	MesaADD  = 0x05 // ADD:    s[p-1] += s[p]; pop      (2 µinst)
	MesaSUB  = 0x06 // SUB                              (2 µinst)
	MesaAND  = 0x07 // AND                              (2 µinst)
	MesaOR   = 0x08 // OR                               (2 µinst)
	MesaXOR  = 0x09 // XOR                              (2 µinst)
	MesaINC  = 0x0A // INC:    top++                    (1 µinst)
	MesaNEG  = 0x0B // NEG:    top = -top               (1 µinst)
	MesaDUP  = 0x0C // DUP                              (1 µinst)
	MesaDROP = 0x0D // DROP                             (1 µinst)
	MesaJMP  = 0x0E // JMP w:  jump to byte PC w        (2 µinst + IFU restart)
	MesaJZ   = 0x0F // JZ w:   pop; jump if zero        (2 or 3 µinst)
	MesaJNZ  = 0x10 // JNZ w                            (2 or 3 µinst)
	MesaCALL = 0x11 // CALL w: call function header w   (≈22 + 3/arg µinst)
	MesaRET  = 0x12 // RET                              (12 µinst)
	MesaLG   = 0x13 // LG a:   push global a            (2 µinst)
	MesaSG   = 0x14 // SG a:   pop into global a        (2 µinst)
	MesaRF   = 0x15 // RF d:   pop addr; push field     (6 µinst)
	MesaWF   = 0x16 // WF d:   pop data, addr; merge    (8 µinst)
	MesaMUL  = 0x17 // MUL:    pop two, push product    (21 µinst)
	MesaLSH  = 0x18 // LSH a:  top <<= a                (4 µinst)
	MesaJN   = 0x19 // JN w:   pop; jump if negative    (2 or 3 µinst)
	MesaHALT = 0x1F // HALT:   stop the machine
)

// Stack-mode RAddress nibbles: +1 push, 0 replace-top, −1 pop.
const (
	push = 1
	top  = 0
	pop  = 15 // two's-complement −1
)

// BuildMesa assembles the Mesa emulator.
func BuildMesa() (*Program, error) {
	b := masm.NewBuilder()
	emitBoot(b)
	emitMesaHandlers(b)
	p, err := b.Assemble()
	if err != nil {
		return nil, err
	}
	return finishMesa(p, "")
}

// BuildMesaPadded assembles the Mesa emulator scheduled for a machine
// without bypassing (§5.6's Model 0): a no-op is inserted at every
// read-after-write hazard. It returns the padded emulator and the number
// of no-ops inserted — the "significant loss of performance" of experiment
// E10 is their cost.
func BuildMesaPadded() (*Program, int, error) {
	b := masm.NewBuilder()
	emitBoot(b)
	emitMesaHandlers(b)
	pads := b.PadCount()
	p, err := b.PaddedForNoBypass().Assemble()
	if err != nil {
		return nil, 0, err
	}
	prog, err := finishMesa(p, "")
	if err != nil {
		return nil, 0, err
	}
	prog.Name = "mesa-padded"
	return prog, pads, nil
}

// finishMesa builds the decode table from the placed program; prefix
// selects relocated symbols in a composed SystemImage.
func finishMesa(p *masm.Program, prefix string) (*Program, error) {
	table, ops, err := buildTable(p, prefix, []opdef{
		{MesaLL, "LL", "m.ll", 1, false},
		{MesaSL, "SL", "m.sl", 1, false},
		{MesaLIB, "LIB", "m.lib", 1, false},
		{MesaLIW, "LIW", "m.liw", 2, true},
		{MesaADD, "ADD", "m.add", 0, false},
		{MesaSUB, "SUB", "m.sub", 0, false},
		{MesaAND, "AND", "m.and", 0, false},
		{MesaOR, "OR", "m.or", 0, false},
		{MesaXOR, "XOR", "m.xor", 0, false},
		{MesaINC, "INC", "m.inc", 0, false},
		{MesaNEG, "NEG", "m.neg", 0, false},
		{MesaDUP, "DUP", "m.dup", 0, false},
		{MesaDROP, "DROP", "m.drop", 0, false},
		{MesaJMP, "JMP", "m.jmp", 2, true},
		{MesaJZ, "JZ", "m.jz", 2, true},
		{MesaJNZ, "JNZ", "m.jnz", 2, true},
		{MesaCALL, "CALL", "m.call", 2, true},
		{MesaRET, "RET", "m.ret", 0, false},
		{MesaLG, "LG", "m.lg", 1, false},
		{MesaSG, "SG", "m.sg", 1, false},
		{MesaRF, "RF", "m.rf", 2, true},
		{MesaWF, "WF", "m.wf", 2, true},
		{MesaMUL, "MUL", "m.mul", 0, false},
		{MesaLSH, "LSH", "m.lsh", 1, false},
		{MesaJN, "JN", "m.jn", 2, true},
		{MesaHALT, "HALT", "op.halt", 0, false},
	})
	if err != nil {
		return nil, err
	}
	return &Program{
		Name:    "mesa",
		Micro:   p,
		Table:   table,
		Boot:    p.MustEntry(prefix + "boot"),
		Opcodes: ops,
		RestMB:  MBLocal,
	}, nil
}

// emitMesaHandlers writes the handler microcode. Conventions: the hardware
// stack is the evaluation stack (STACKPTR at the top element); T is free
// scratch within a handler; MEMBASE rests at MBLocal between opcodes.
func emitMesaHandlers(b *masm.Builder) {
	jump := masm.IFUJump()

	// LL a: fetch local a, push it.
	b.EmitAt("m.ll", masm.I{A: microcode.ASelFetchIFU})
	b.Emit(masm.I{ALU: microcode.ALUB, B: microcode.BSelMD, LC: microcode.LCLoadRM,
		Block: true, R: push, Flow: jump})

	// SL a: store the popped top at local a — one microinstruction: the
	// operand is the address, the stack top is the data (§7: "moves a
	// 16 bit word to or from memory in one microinstruction").
	b.EmitAt("m.sl", masm.I{A: microcode.ASelStoreIFU, B: microcode.BSelRM,
		Block: true, R: pop, Flow: jump})

	// LIB/LIW: push the operand.
	b.EmitAt("m.lib", masm.I{A: microcode.ASelIFUData, ALU: microcode.ALUA,
		LC: microcode.LCLoadRM, Block: true, R: push, Flow: jump})
	b.EmitAt("m.liw", masm.I{A: microcode.ASelIFUData, ALU: microcode.ALUA,
		LC: microcode.LCLoadRM, Block: true, R: push, Flow: jump})

	// Binary operators: T ← pop, then top ← top ⊕ T.
	binop := func(label string, fn microcode.ALUFn) {
		b.EmitAt(label, masm.I{ALU: microcode.ALUA, LC: microcode.LCLoadT, Block: true, R: pop})
		b.Emit(masm.I{ALU: fn, B: microcode.BSelT, LC: microcode.LCLoadRM,
			Block: true, R: top, Flow: jump})
	}
	binop("m.add", microcode.ALUAplusB)
	binop("m.sub", microcode.ALUAminusB)
	binop("m.and", microcode.ALUAandB)
	binop("m.or", microcode.ALUAorB)
	binop("m.xor", microcode.ALUAxorB)

	// Unary operators on the top element.
	b.EmitAt("m.inc", masm.I{ALU: microcode.ALUAplus1, LC: microcode.LCLoadRM,
		Block: true, R: top, Flow: jump})
	b.EmitAt("m.neg", masm.I{ALU: microcode.ALUBminusA, Const: 0, HasConst: true,
		LC: microcode.LCLoadRM, Block: true, R: top, Flow: jump})
	b.EmitAt("m.dup", masm.I{ALU: microcode.ALUA, LC: microcode.LCLoadRM,
		Block: true, R: push, Flow: jump})
	b.EmitAt("m.drop", masm.I{Block: true, R: pop, Flow: jump})

	// JMP w: reset the IFU at the target byte PC.
	b.EmitAt("m.jmp", masm.I{A: microcode.ASelIFUData, ALU: microcode.ALUA, LC: microcode.LCLoadT})
	b.Emit(masm.I{B: microcode.BSelT, FF: microcode.FFIFUReset})
	b.Emit(masm.I{Flow: jump})

	// JZ w / JNZ w: pop, test, maybe jump. The untaken path leaves the
	// operand to be discarded by the next dispatch.
	condJump := func(label string, takenOnZero bool) {
		no, yes := label+".no", label+".yes"
		elseL, thenL := no, yes
		if !takenOnZero {
			elseL, thenL = yes, no // ALU≠0 falls to .yes
		}
		b.EmitAt(label, masm.I{ALU: microcode.ALUA, Block: true, R: pop,
			Flow: masm.Branch(microcode.CondALUZero, elseL, thenL)})
		b.EmitAt(no, masm.I{Flow: jump})
		b.EmitAt(yes, masm.I{A: microcode.ASelIFUData, ALU: microcode.ALUA, LC: microcode.LCLoadT})
		b.Emit(masm.I{B: microcode.BSelT, FF: microcode.FFIFUReset})
		b.Emit(masm.I{Flow: jump})
	}
	condJump("m.jz", true)
	condJump("m.jnz", false)

	// JN w: pop; jump if the value is negative (bit 15), the compare-jump
	// the compiler builds < and > from.
	b.EmitAt("m.jn", masm.I{ALU: microcode.ALUA, Block: true, R: pop,
		Flow: masm.Branch(microcode.CondALUNeg, "m.jn.no", "m.jn.yes")})
	b.EmitAt("m.jn.no", masm.I{Flow: jump})
	b.EmitAt("m.jn.yes", masm.I{A: microcode.ASelIFUData, ALU: microcode.ALUA, LC: microcode.LCLoadT})
	b.Emit(masm.I{B: microcode.BSelT, FF: microcode.FFIFUReset})
	b.Emit(masm.I{Flow: jump})

	// CALL w: w is the word address (in MBGlobal) of a two-word function
	// header {entry byte PC, nargs}. Allocates a frame from the free list,
	// saves the caller's L and return PC, moves the arguments from the
	// evaluation stack into the frame, rebases MBLocal, and restarts the
	// IFU at the entry PC. Frame layout: [0]=saved L, [1]=saved PC,
	// [2..]=args (in pop order: local 0 is the LAST argument), then locals.
	b.EmitAt("m.call", masm.I{A: microcode.ASelIFUData, ALU: microcode.ALUA,
		LC: microcode.LCLoadRM, R: rHdr})
	b.Emit(masm.I{A: microcode.ASelFetch, R: rHdr, ALU: microcode.ALUAplus1,
		LC: microcode.LCLoadRM, FF: microcode.FFMemBaseBase + MBGlobal})
	b.Emit(masm.I{ALU: microcode.ALUB, B: microcode.BSelMD, LC: microcode.LCLoadRM, R: rPC})
	b.Emit(masm.I{A: microcode.ASelFetch, R: rHdr})
	b.Emit(masm.I{B: microcode.BSelMD, FF: microcode.FFPutCount})
	b.Emit(masm.I{A: microcode.ASelFetch, R: rAV, FF: microcode.FFMemBaseBase + MBSys})
	// A zero free-list head means the frame pool is exhausted: trap (the
	// real Mesa XFER checked frame availability the same way).
	b.Emit(masm.I{ALU: microcode.ALUB, B: microcode.BSelMD, LC: microcode.LCLoadRM, R: rFB,
		Flow: masm.Branch(microcode.CondALUZero, "m.call.ok", "m.call.exh")})
	b.EmitAt("m.call.exh", masm.I{Flow: masm.Goto("illegal")})
	b.EmitAt("m.call.ok", masm.I{ALU: microcode.ALUB, B: microcode.BSelMD, LC: microcode.LCLoadRM, R: rNew})
	b.Emit(masm.I{A: microcode.ASelFetch, R: rFB})
	b.Emit(masm.I{A: microcode.ASelStore, R: rAV, B: microcode.BSelMD})
	b.Emit(masm.I{A: microcode.ASelRM, R: rL, ALU: microcode.ALUA, LC: microcode.LCLoadT})
	b.Emit(masm.I{A: microcode.ASelStore, R: rNew, B: microcode.BSelT,
		ALU: microcode.ALUAplus1, LC: microcode.LCLoadRM})
	b.Emit(masm.I{FF: microcode.FFGetMacroPC, LC: microcode.LCLoadT})
	b.Emit(masm.I{A: microcode.ASelStore, R: rNew, B: microcode.BSelT,
		ALU: microcode.ALUAplus1, LC: microcode.LCLoadRM})
	// Argument loop: while COUNT≠0, pop an argument into the frame.
	b.EmitAt("m.call.head", masm.I{Flow: masm.Branch(microcode.CondCountNZ, "m.call.fin", "m.call.arg")})
	b.EmitAt("m.call.arg", masm.I{ALU: microcode.ALUA, LC: microcode.LCLoadT, Block: true, R: pop})
	b.Emit(masm.I{A: microcode.ASelStore, R: rNew, B: microcode.BSelT,
		ALU: microcode.ALUAplus1, LC: microcode.LCLoadRM, Flow: masm.Goto("m.call.head")})
	b.EmitAt("m.call.fin", masm.I{A: microcode.ASelRM, R: rFB, ALU: microcode.ALUA,
		LC: microcode.LCLoadRM, FF: microcode.FFRMDestBase + rL})
	b.Emit(masm.I{FF: microcode.FFMemBaseBase + MBLocal})
	b.Emit(masm.I{B: microcode.BSelRM, R: rL, FF: microcode.FFPutBaseLo})
	b.Emit(masm.I{A: microcode.ASelRM, R: rPC, ALU: microcode.ALUA, LC: microcode.LCLoadT})
	b.Emit(masm.I{B: microcode.BSelT, FF: microcode.FFIFUReset})
	b.Emit(masm.I{Flow: jump})

	// RET: restore the caller's frame and PC, free this frame.
	b.EmitAt("m.ret", masm.I{A: microcode.ASelFetch, R: rZero})
	b.Emit(masm.I{ALU: microcode.ALUB, B: microcode.BSelMD, LC: microcode.LCLoadRM, R: rTmp})
	b.Emit(masm.I{A: microcode.ASelFetch, R: rOne})
	b.Emit(masm.I{ALU: microcode.ALUB, B: microcode.BSelMD, LC: microcode.LCLoadT})
	b.Emit(masm.I{B: microcode.BSelRM, R: rL, FF: microcode.FFPutQ})
	b.Emit(masm.I{A: microcode.ASelFetch, R: rAV, FF: microcode.FFMemBaseBase + MBSys})
	b.Emit(masm.I{A: microcode.ASelStore, R: rL, B: microcode.BSelMD})
	b.Emit(masm.I{A: microcode.ASelStore, R: rAV, B: microcode.BSelQ})
	b.Emit(masm.I{A: microcode.ASelRM, R: rTmp, ALU: microcode.ALUA,
		LC: microcode.LCLoadRM, FF: microcode.FFRMDestBase + rL})
	b.Emit(masm.I{FF: microcode.FFMemBaseBase + MBLocal})
	b.Emit(masm.I{B: microcode.BSelRM, R: rL, FF: microcode.FFPutBaseLo})
	b.Emit(masm.I{B: microcode.BSelT, FF: microcode.FFIFUReset})
	b.Emit(masm.I{Flow: jump})

	// LG/SG: globals, switching MEMBASE there and back.
	b.EmitAt("m.lg", masm.I{A: microcode.ASelFetchIFU, FF: microcode.FFMemBaseBase + MBGlobal})
	b.Emit(masm.I{ALU: microcode.ALUB, B: microcode.BSelMD, LC: microcode.LCLoadRM,
		Block: true, R: push, FF: microcode.FFMemBaseBase + MBLocal, Flow: jump})
	b.EmitAt("m.sg", masm.I{A: microcode.ASelStoreIFU, B: microcode.BSelRM,
		Block: true, R: pop, FF: microcode.FFMemBaseBase + MBGlobal})
	b.Emit(masm.I{FF: microcode.FFMemBaseBase + MBLocal, Flow: jump})

	// RF d: pop an absolute address, fetch the word, extract the field
	// described by the wide operand (a pre-encoded SHIFTCTL value), push it.
	b.EmitAt("m.rf", masm.I{A: microcode.ASelFetch, Block: true, R: pop,
		FF: microcode.FFMemBaseBase + MBSys})
	b.Emit(masm.I{A: microcode.ASelIFUData, ALU: microcode.ALUA, LC: microcode.LCLoadT})
	b.Emit(masm.I{B: microcode.BSelT, FF: microcode.FFPutShiftCtl})
	b.Emit(masm.I{ALU: microcode.ALUB, B: microcode.BSelMD, LC: microcode.LCLoadT})
	b.Emit(masm.I{FF: microcode.FFShiftMaskZ, LC: microcode.LCLoadRM,
		Block: true, R: push})
	b.Emit(masm.I{FF: microcode.FFMemBaseBase + MBLocal, Flow: jump})

	// WF d: pop data then an absolute address; read-modify-write the field.
	b.EmitAt("m.wf", masm.I{A: microcode.ASelIFUData, ALU: microcode.ALUA, LC: microcode.LCLoadT})
	b.Emit(masm.I{B: microcode.BSelT, FF: microcode.FFPutShiftCtl})
	b.Emit(masm.I{ALU: microcode.ALUA, LC: microcode.LCLoadT, Block: true, R: pop})
	b.Emit(masm.I{A: microcode.ASelT, ALU: microcode.ALUA, LC: microcode.LCLoadRM, R: rTmp})
	b.Emit(masm.I{A: microcode.ASelFetch, Block: true, R: top,
		FF: microcode.FFMemBaseBase + MBSys})
	b.Emit(masm.I{FF: microcode.FFShiftMaskMD, R: rTmp, LC: microcode.LCLoadT})
	b.Emit(masm.I{A: microcode.ASelStore, B: microcode.BSelT, Block: true, R: pop})
	b.Emit(masm.I{FF: microcode.FFMemBaseBase + MBLocal, Flow: jump})

	// MUL: pop the multiplier into Q, 16 multiply steps against the top,
	// replace the top with the low half of the product.
	b.EmitAt("m.mul", masm.I{ALU: microcode.ALUA, LC: microcode.LCLoadT, Block: true, R: pop})
	b.Emit(masm.I{B: microcode.BSelT, FF: microcode.FFPutQ})
	b.Emit(masm.I{Const: 0, HasConst: true, ALU: microcode.ALUB, LC: microcode.LCLoadT})
	b.Emit(masm.I{FF: microcode.FFCountBase + 15})
	b.EmitAt("m.mul.loop", masm.I{FF: microcode.FFMulStep, A: microcode.ASelT,
		B: microcode.BSelRM, LC: microcode.LCLoadT, Block: true, R: top,
		Flow: masm.Branch(microcode.CondCountNZ, "m.mul.done", "m.mul.loop")})
	b.EmitAt("m.mul.done", masm.I{FF: microcode.FFGetQ, LC: microcode.LCLoadRM,
		Block: true, R: top, Flow: jump})

	// LSH a: shift the top left by the operand.
	b.EmitAt("m.lsh", masm.I{Const: 0, HasConst: true, ALU: microcode.ALUB, LC: microcode.LCLoadT})
	b.Emit(masm.I{A: microcode.ASelIFUData, ALU: microcode.ALUA, LC: microcode.LCLoadRM, R: rTmp})
	b.Emit(masm.I{B: microcode.BSelRM, R: rTmp, FF: microcode.FFPutShiftCtl})
	b.Emit(masm.I{FF: microcode.FFShiftNoMask, LC: microcode.LCLoadRM,
		Block: true, R: top, Flow: jump})
}
