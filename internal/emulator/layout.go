package emulator

import (
	"fmt"

	"dorado/internal/core"
	"dorado/internal/ifu"
	"dorado/internal/masm"
	"dorado/internal/microcode"
)

// Memory base register assignments (MEMBASE values). Base 0 stays zero so
// plain RM-displacement references address low memory.
const (
	MBSys    = 0 // system page, frame heap (base 0)
	MBCode   = 1 // macroinstruction code
	MBLocal  = 2 // current frame (rebased by call/return microcode)
	MBGlobal = 3 // globals and function headers
	MBStack  = 4 // memory evaluation stack (Lisp)
	MBHeap   = 5 // cons cells / objects
)

// Word-VA layout. Everything lives in the low 64 K words so 16-bit base
// reloads (FF PutBaseLo) suffice.
const (
	VASys    = 0x0000
	VAFrames = 0x0800 // frame heap: 64 frames × 32 words
	VACode   = 0x2000
	VAGlobal = 0x3000
	VAStack  = 0x4000
	VAHeap   = 0x5000
	VABind   = 0x7000 // Lisp shallow-binding stack

	// AVHead is the sys-page word holding the frame free-list head.
	AVHead = 0x0010
	// HPHead is the sys-page word holding the heap allocation pointer.
	HPHead = 0x0014

	frameWords = 32
	frameCount = 96 // 0x0800..0x13FF; code starts at 0x2000
)

// Emulator RM register conventions (bank 0). Registers 8–15 are the
// emulator's dedicated pointers; 0–7 are scratch.
const (
	rScratch  = 0
	rScratch2 = 1
	rTmp      = 2
	rTmp2     = 3
	rVal      = 4
	rVal2     = 5
	rHdr      = 6
	rPC       = 7
	rZero     = 8  // always 0
	rOne      = 9  // always 1
	rAV       = 10 // address of the frame free-list head (AVHead)
	rL        = 11 // current frame address (mirrors base[MBLocal])
	rSP       = 12 // memory stack pointer (Lisp: displacement from MBStack)
	rNew      = 13 // frame allocation cursor
	rFB       = 14 // frame base during call
	rGP       = 15 // Lisp: binding-stack pointer; Smalltalk: send-chain class cursor
)

// Program is an assembled emulator: microcode image plus the IFU decode
// table and boot entry.
type Program struct {
	Name    string
	Micro   *masm.Program
	Table   [256]ifu.Entry
	Boot    microcode.Addr
	Opcodes map[string]uint8 // mnemonic → opcode byte
	// RestMB is the MEMBASE value handlers leave selected between opcodes
	// (MBLocal for the frame-relative machines, MBSys for Lisp, which
	// addresses its memory stack and heap absolutely).
	RestMB uint8
}

// InstallOn loads the emulator into a machine: microstore, IFU decode
// table, base registers, RM pointer registers, and task 0 boot at the
// dispatch loop. The macroprogram bytes must already be in memory at
// VACode (see LoadCode).
func (p *Program) InstallOn(m *core.Machine) error {
	m.Load(&p.Micro.Words)
	u := m.IFU()
	u.ResetTable() // drop any previously installed emulator's opcodes
	for op := 0; op < 256; op++ {
		if p.Table[op].Valid {
			e := p.Table[op]
			if err := u.SetEntry(uint8(op), e); err != nil {
				return &InstallError{Emulator: p.Name, Stage: "decode-table", Err: err}
			}
		}
	}
	mem := m.Mem()
	mem.SetBase(MBSys, 0)
	mem.SetBase(MBCode, VACode)
	mem.SetBase(MBLocal, VAFrames) // first frame; calls rebase
	mem.SetBase(MBGlobal, VAGlobal)
	mem.SetBase(MBStack, VAStack)
	mem.SetBase(MBHeap, VAHeap)
	u.SetCodeBase(VACode)

	// Frame free list: frame 0 is the boot frame (live); 1..frameCount-1
	// linked through word 0.
	mem.Poke(AVHead, VAFrames+1*frameWords)
	for f := 1; f < frameCount; f++ {
		next := uint16(VAFrames + (f+1)*frameWords)
		if f == frameCount-1 {
			next = 0
		}
		mem.Poke(uint32(VAFrames+f*frameWords), next)
	}

	mem.Poke(HPHead, VAHeap)

	m.SetRM(rZero, 0)
	m.SetRM(rOne, 1)
	m.SetRM(rAV, AVHead)
	m.SetRM(rL, VAFrames)
	m.SetRM(rSP, VAStack) // empty memory evaluation stack
	m.SetRM(rGP, VABind)  // empty binding stack
	m.SetMemBase(p.RestMB)
	m.Start(p.Boot)
	u.Reset(0, m.Cycle())
	return nil
}

// LispStack reads the Lisp memory evaluation stack as (tag, value) pairs,
// bottom first (the Lisp emulator keeps its stack in memory at VAStack,
// with the pointer in RM register 12).
func LispStack(m *core.Machine) [][2]uint16 {
	sp := uint32(m.RM(rSP))
	var out [][2]uint16
	for a := uint32(VAStack); a+1 < sp; a += 2 {
		out = append(out, [2]uint16{m.Mem().Peek(a), m.Mem().Peek(a + 1)})
	}
	return out
}

// LoadCode writes a macroinstruction byte stream at VACode.
func LoadCode(m *core.Machine, code []byte) {
	mem := m.Mem()
	for i := 0; i+1 < len(code); i += 2 {
		mem.Poke(VACode+uint32(i/2), uint16(code[i])<<8|uint16(code[i+1]))
	}
	if len(code)%2 == 1 {
		mem.Poke(VACode+uint32(len(code)/2), uint16(code[len(code)-1])<<8)
	}
}

// Boot emits the shared boot/trap microcode into b: a dispatch entry, an
// illegal-opcode halt, and the HALT opcode handler. It returns the labels.
func emitBoot(b *masm.Builder) {
	b.EmitAt("boot", masm.I{Flow: masm.IFUJump()})
	b.EmitAt("illegal", masm.I{FF: microcode.FFHalt, Flow: masm.Self()})
	b.EmitAt("op.halt", masm.I{FF: microcode.FFHalt, Flow: masm.Self()})
}

// resolve fills an IFU decode table from handler labels.
type opdef struct {
	op       uint8
	name     string
	label    string
	operands int
	wide     bool
}

func buildTable(p *masm.Program, prefix string, defs []opdef) ([256]ifu.Entry, map[string]uint8, error) {
	var table [256]ifu.Entry
	ops := map[string]uint8{}
	for _, d := range defs {
		h, err := p.Entry(prefix + d.label)
		if err != nil {
			return table, nil, err
		}
		if table[d.op].Valid {
			return table, nil, fmt.Errorf("emulator: opcode %#02x defined twice", d.op)
		}
		table[d.op] = ifu.Entry{
			Valid: true, Handler: h, Operands: d.operands, Wide: d.wide, Name: d.name,
		}
		ops[d.name] = d.op
	}
	return table, ops, nil
}
