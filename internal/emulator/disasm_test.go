package emulator

import (
	"strings"
	"testing"
)

func TestDisassemble(t *testing.T) {
	p, err := BuildMesa()
	if err != nil {
		t.Fatal(err)
	}
	a := NewAsm(p)
	a.OpB("LIB", 5).OpW("LIW", 1000).Op("ADD").OpW("CALL", 100).Op("HALT")
	code, err := a.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	out := Disassemble(p, code)
	for _, want := range []string{"LIB 5", "LIW 1000", "ADD", "CALL 100", "HALT"} {
		if !strings.Contains(out, want) {
			t.Errorf("disassembly missing %q:\n%s", want, out)
		}
	}
	// Lines carry byte offsets in order.
	if !strings.HasPrefix(out, "   0: ") {
		t.Errorf("no offset prefix:\n%s", out)
	}
}

func TestDisassembleSmalltalkTwoByte(t *testing.T) {
	p, err := BuildSmalltalk()
	if err != nil {
		t.Fatal(err)
	}
	a := NewAsm(p)
	a.OpB2("SEND", 3, 1)
	code, err := a.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	out := Disassemble(p, code)
	if !strings.Contains(out, "SEND 3,1") {
		t.Errorf("two-byte operands wrong:\n%s", out)
	}
}

func TestDisassembleInvalidAndTruncated(t *testing.T) {
	p, err := BuildMesa()
	if err != nil {
		t.Fatal(err)
	}
	out := Disassemble(p, []byte{0xEE, MesaLIW, 0x01})
	if !strings.Contains(out, "??") || !strings.Contains(out, "truncated") {
		t.Errorf("edge cases not rendered:\n%s", out)
	}
}
