package emulator

import (
	"testing"

	"dorado/internal/core"
)

func TestMesaRecursiveFactorial(t *testing.T) {
	// fact(n) = n==0 ? 1 : n*fact(n-1): true recursion through the frame
	// free list.
	m, _ := newMesaMachine(t, func(a *Asm) {
		a.OpB("LIB", 7).OpW("CALL", 100)
		a.Op("HALT")
		a.Label("fact")
		a.OpB("LL", 2).OpL("JZ", "base") // arg at frame slot 2
		a.OpB("LL", 2).OpB("LL", 2).OpW("LIW", 1).Op("SUB")
		a.OpW("CALL", 100) // fact(n-1)
		a.Op("MUL")
		a.Op("RET")
		a.Label("base")
		a.OpB("LIB", 1)
		a.Op("RET")
	})
	// "fact" begins at byte 2+3+1 = 6.
	DefineFunc(m, 100, 6, 1)
	st := runToHalt(t, m, 1_000_000)
	if len(st) != 1 || st[0] != 5040 {
		t.Fatalf("7! = %v, want [5040]", st)
	}
}

func TestMesaDeepRecursionReleasesFrames(t *testing.T) {
	// 40 nested calls (the frame pool holds 95 spares): the free list must
	// come back intact so a second deep call succeeds.
	m, _ := newMesaMachine(t, func(a *Asm) {
		a.OpB("LIB", 40).OpW("CALL", 100)
		a.OpB("LIB", 40).OpW("CALL", 100)
		a.Op("ADD")
		a.Op("HALT")
		a.Label("down")
		a.OpB("LL", 2).OpL("JZ", "leaf")
		a.OpB("LL", 2).OpW("LIW", 1).Op("SUB")
		a.OpW("CALL", 100)
		a.Op("INC")
		a.Op("RET")
		a.Label("leaf")
		a.OpB("LIB", 0)
		a.Op("RET")
	})
	DefineFunc(m, 100, 12, 1) // LIB(2)+CALL(3)+LIB(2)+CALL(3)+ADD(1)+HALT(1) = 12
	st := runToHalt(t, m, 1_000_000)
	if len(st) != 1 || st[0] != 80 {
		t.Fatalf("two deep descents = %v, want [80]", st)
	}
}

func TestMesaArraySum(t *testing.T) {
	// Sum a 64-element vector through RF-free absolute fetches: build the
	// address on the stack and use RF with a full-word descriptor.
	m, _ := newMesaMachine(t, func(a *Asm) {
		a.OpB("LIB", 0).OpB("SL", 5)  // acc
		a.OpB("LIB", 64).OpB("SL", 4) // i = 64
		a.Label("loop")
		// addr = 0x0200 + i - 1
		a.OpW("LIW", 0x0200-1+0).OpB("LL", 4).Op("ADD")
		a.OpW("RF", ExtractCtl(0, 16)) // read the whole word
		a.OpB("LL", 5).Op("ADD").OpB("SL", 5)
		a.OpB("LL", 4).OpW("LIW", 1).Op("SUB").OpB("SL", 4)
		a.OpB("LL", 4).OpL("JNZ", "loop")
		a.OpB("LL", 5)
		a.Op("HALT")
	})
	var want uint16
	for i := 0; i < 64; i++ {
		v := uint16(i * 3)
		m.Mem().Poke(0x0200+uint32(i), v)
		want += v
	}
	st := runToHalt(t, m, 1_000_000)
	if len(st) != 1 || st[0] != want {
		t.Fatalf("vector sum = %v, want [%d]", st, want)
	}
}

func TestLispListBuildAndWalk(t *testing.T) {
	// Build (1 2 3 4 5) with CONS, then walk it with CDR/CAR summing.
	m := newLispMachine(t, func(a *Asm) {
		a.Op("PUSHNIL")
		for n := 5; n >= 1; n-- {
			// (cons n list): stack wants [car, cdr] with cdr on top —
			// current top is the list; push n then swap? No swap opcode:
			// use locals.
			a.OpB("POPL", 4)          // list → local
			a.OpW("PUSHK", uint16(n)) // car
			a.OpB("PUSHL", 4)         // cdr
			a.Op("CONS")
		}
		// Sum the list into local 6.
		a.OpW("PUSHK", 0).OpB("POPL", 6)
		a.Label("walk")
		a.OpB("POPL", 4)  // list → local
		a.OpB("PUSHL", 4) // (two copies)
		a.OpB("PUSHL", 4)
		a.Op("CAR")
		a.OpB("PUSHL", 6).Op("ADDF").OpB("POPL", 6) // acc += car
		a.Op("CDR")
		a.OpB("POPL", 4)
		a.OpB("PUSHL", 4)
		a.OpL("JNIL", "end")
		a.OpB("PUSHL", 4)
		a.OpL("JMP", "walk")
		a.Label("end")
		a.OpB("PUSHL", 6)
		a.Op("HALT")
	})
	st := lispRun(t, m, 1_000_000)
	if len(st) != 1 || st[0] != [2]uint16{TagFixnum, 15} {
		t.Fatalf("list sum = %v, want [[1 15]]", st)
	}
}

func TestLispRecursiveSum(t *testing.T) {
	// f(n) = n==0(via JNIL? no zero test) ... use fixnum countdown with
	// recursion: f(n) = n + f(n-1), base case detected by a counter local.
	// Without a fixnum-zero jump opcode the macro compiler uses JNIL on a
	// sentinel; simpler: fixed-depth recursion of 10 calls.
	const symN = VAHeap + 0x400
	m := newLispMachine(t, func(a *Asm) {
		a.OpW("PUSHK", 10).OpW("CALLF", 200)
		a.Op("HALT")
		a.Label("f") // arg item in frame slots 4,5
		// 9 more nested calls, each passing arg-1... emulate fixed depth by
		// checking a global countdown is impractical here; instead call a
		// second function that just doubles, proving nested CALLF/RETF
		// under shallow binding.
		a.OpB("PUSHL", 4).OpW("CALLF", 210)
		a.Op("RETF")
		a.Label("g")
		a.OpB("PUSHL", 4).OpB("PUSHL", 4).Op("ADDF")
		a.Op("RETF")
	})
	fPC := uint16(3 + 3 + 1) // PUSHK(3)+CALLF(3)+HALT(1)
	gPC := fPC + 2 + 3 + 1   // PUSHL(2)+CALLF(3)+RETF(1)
	DefineLispFunc(m, 200, fPC, []uint16{symN})
	DefineLispFunc(m, 210, gPC, []uint16{symN + 8})
	st := lispRun(t, m, 1_000_000)
	if len(st) != 1 || st[0] != [2]uint16{TagFixnum, 20} {
		t.Fatalf("f(10) = %v, want [[1 20]]", st)
	}
	// Bindings fully unwound.
	if m.RM(15) != VABind {
		t.Errorf("binding stack not rewound: %#x", m.RM(15))
	}
}

func TestSmalltalkTwoClassesDispatch(t *testing.T) {
	// The same selector dispatches to different methods by receiver class:
	// Integer>>tag answers 1, Point>>tag answers 2.
	m := newSTMachine(t, func(a *Asm) {
		a.OpW("PUSHK", 5)
		a.OpB2("SEND", 9, 0) // Integer>>tag
		a.Op("PUSHSELF")
		a.OpB2("SEND", 9, 0) // Point>>tag
		a.Op("ADDI")
		a.Op("HALT")
		a.Label("itag")
		a.OpW("PUSHK", 1)
		a.Op("RETTOP")
		a.Label("ptag")
		a.OpW("PUSHK", 2)
		a.Op("RETTOP")
	})
	buildSmalltalkWorld(m, [][2]uint16{{9, 330}}, [][2]uint16{{9, 340}})
	// Bytes: PUSHK(3)+SEND(3)+PUSHSELF(1)+SEND(3)+ADDI(1)+HALT(1) = 12.
	DefineFunc(m, 330, 12, 0)
	DefineFunc(m, 340, 12+3+1, 0)
	m.Mem().Poke(VAFrames+2, stPointObj)
	st := stRun(t, m, 1_000_000)
	want := uint16(3<<1 | 1)
	if len(st) != 1 || st[0] != want {
		t.Fatalf("polymorphic tags = %v, want [%d]", st, want)
	}
}

func TestSmalltalkSendWithArguments(t *testing.T) {
	// Point>>addX: arg — reads the argument from its frame (slot 3) and an
	// instance variable, demonstrating argument passing through SEND.
	m := newSTMachine(t, func(a *Asm) {
		a.Op("PUSHSELF")
		a.OpW("PUSHK", 12)
		a.OpB2("SEND", 4, 1)
		a.Op("HALT")
		a.Label("addx")
		a.OpB("PUSHIV", 1) // x = 30
		a.OpB("PUSHL", 3)  // the argument (12, tagged)
		a.Op("ADDI")
		a.Op("RETTOP")
	})
	buildSmalltalkWorld(m, nil, [][2]uint16{{4, 350}})
	DefineFunc(m, 350, 1+3+3+1, 0) // PUSHSELF+PUSHK+SEND+HALT = 8
	m.Mem().Poke(VAFrames+2, stPointObj)
	st := stRun(t, m, 1_000_000)
	// x is stored tagged (30<<1|1 = 61); ADDI over tags: (61 + 25 - 1) = 85
	// = (42<<1|1): 30+12 = 42 in SmallInteger arithmetic.
	want := uint16(42<<1 | 1)
	if len(st) != 1 || st[0] != want {
		t.Fatalf("addX = %v, want [%d]", st, want)
	}
}

// TestEmulatorsShareNoState is a hygiene check: building two systems and
// running them interleaved cannot cross-contaminate (the builders are
// reentrant; machines own all state).
func TestEmulatorsShareNoState(t *testing.T) {
	m1, _ := newMesaMachine(t, func(a *Asm) {
		a.OpB("LIB", 11).Op("HALT")
	})
	m2, _ := newMesaMachine(t, func(a *Asm) {
		a.OpB("LIB", 22).Op("HALT")
	})
	step := func(m *core.Machine) {
		if !m.Halted() {
			m.Step()
		}
	}
	for i := 0; i < 200; i++ {
		step(m1)
		step(m2)
	}
	if !m1.Halted() || !m2.Halted() {
		t.Fatal("machines did not halt")
	}
	if m1.Stack(1) != 11 || m2.Stack(1) != 22 {
		t.Fatalf("cross-contamination: %d, %d", m1.Stack(1), m2.Stack(1))
	}
}
