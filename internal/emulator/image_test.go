package emulator

import (
	"testing"

	"dorado/internal/core"
)

func TestSystemImageRunsEveryLanguage(t *testing.T) {
	img, err := BuildSystemImage()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("system image: %v", img.Micro.Stats)

	// Mesa view.
	{
		m, _ := core.New(core.Config{})
		a := NewAsm(img.Mesa)
		a.OpB("LIB", 40).OpB("LIB", 2).Op("ADD").Op("HALT")
		if err := a.Install(m); err != nil {
			t.Fatal(err)
		}
		if err := img.Mesa.InstallOn(m); err != nil {
			t.Fatal(err)
		}
		if !m.Run(100_000) {
			t.Fatal("mesa view did not halt")
		}
		if m.Stack(1) != 42 {
			t.Fatalf("mesa on image = %d", m.Stack(1))
		}
	}
	// BCPL view.
	{
		m, _ := core.New(core.Config{})
		a := NewAsm(img.BCPL)
		a.OpB("LDK", 40).OpB("ADDK", 2).Op("HALT")
		if err := a.Install(m); err != nil {
			t.Fatal(err)
		}
		if err := img.BCPL.InstallOn(m); err != nil {
			t.Fatal(err)
		}
		if !m.Run(100_000) {
			t.Fatal("bcpl view did not halt")
		}
		if m.T(0) != 42 {
			t.Fatalf("bcpl on image = %d", m.T(0))
		}
	}
	// Lisp view.
	{
		m, _ := core.New(core.Config{})
		a := NewAsm(img.Lisp)
		a.OpW("PUSHK", 40).OpW("PUSHK", 2).Op("ADDF").Op("HALT")
		if err := a.Install(m); err != nil {
			t.Fatal(err)
		}
		if err := img.Lisp.InstallOn(m); err != nil {
			t.Fatal(err)
		}
		if !m.Run(100_000) {
			t.Fatal("lisp view did not halt")
		}
		if st := LispStack(m); len(st) != 1 || st[0] != [2]uint16{TagFixnum, 42} {
			t.Fatalf("lisp on image = %v", st)
		}
	}
	// Smalltalk view.
	{
		m, _ := core.New(core.Config{})
		a := NewAsm(img.Smalltalk)
		a.OpW("PUSHK", 20).OpW("PUSHK", 22).Op("ADDI").Op("HALT")
		if err := a.Install(m); err != nil {
			t.Fatal(err)
		}
		if err := img.Smalltalk.InstallOn(m); err != nil {
			t.Fatal(err)
		}
		if !m.Run(100_000) {
			t.Fatal("smalltalk view did not halt")
		}
		if m.Stack(1) != 42<<1|1 {
			t.Fatalf("smalltalk on image = %d", m.Stack(1))
		}
	}
	// The views share one store: all boot addresses differ and all live in
	// the same image.
	boots := map[string]bool{}
	for _, p := range []*Program{img.Mesa, img.BCPL, img.Lisp, img.Smalltalk} {
		if boots[p.Boot.String()] {
			t.Fatalf("duplicate boot address %v", p.Boot)
		}
		boots[p.Boot.String()] = true
		if !img.Micro.Used[p.Boot] {
			t.Fatalf("boot %v not in the image", p.Boot)
		}
	}
}

func TestSystemImageRebootBetweenLanguages(t *testing.T) {
	// One machine, one store, two languages in sequence: the Dorado's
	// actual mode of use (reload the emulator, keep the microstore).
	img, err := BuildSystemImage()
	if err != nil {
		t.Fatal(err)
	}
	m, _ := core.New(core.Config{})
	a := NewAsm(img.Mesa)
	a.OpB("LIB", 7).Op("HALT")
	if err := a.Install(m); err != nil {
		t.Fatal(err)
	}
	if err := img.Mesa.InstallOn(m); err != nil {
		t.Fatal(err)
	}
	if !m.Run(100_000) || m.Stack(1) != 7 {
		t.Fatal("first (Mesa) boot failed")
	}
	// Reboot as BCPL without reloading the store contents.
	b := NewAsm(img.BCPL)
	b.OpB("LDK", 9).Op("HALT")
	if err := b.Install(m); err != nil {
		t.Fatal(err)
	}
	if err := img.BCPL.InstallOn(m); err != nil {
		t.Fatal(err)
	}
	if !m.Run(100_000) || m.T(0) != 9 {
		t.Fatalf("second (BCPL) boot failed: T=%d", m.T(0))
	}
}
