package emulator

import (
	"dorado/internal/masm"
	"dorado/internal/microcode"
)

// BCPL opcode bytes. The BCPL emulator (the Alto-compatibility instruction
// set's ancestor) is an accumulator machine: the task-specific T register
// *is* the accumulator, so simple loads and stores are one or two
// microinstructions, exactly like Mesa (§7 groups "Mesa (or BCPL)").
const (
	BCPLLDK  = 0x01 // LDK a:   ACC ← literal byte      (1 µinst)
	BCPLLDW  = 0x02 // LDW w:   ACC ← literal word      (1 µinst)
	BCPLLDL  = 0x03 // LDL a:   ACC ← local a           (2 µinst)
	BCPLSTL  = 0x04 // STL a:   local a ← ACC           (1 µinst)
	BCPLADDL = 0x05 // ADDL a:  ACC += local a          (2 µinst)
	BCPLSUBL = 0x06 // SUBL a:  ACC -= local a          (2 µinst)
	BCPLANDL = 0x07 // ANDL a                           (2 µinst)
	BCPLORL  = 0x08 // ORL a                            (2 µinst)
	BCPLADDK = 0x09 // ADDK a:  ACC += literal byte     (1 µinst)
	BCPLNEG  = 0x0A // NEG:     ACC = -ACC              (1 µinst)
	BCPLJMP  = 0x0B // JMP w                            (2 µinst + restart)
	BCPLJZ   = 0x0C // JZ w:    jump if ACC==0          (1 or 3 µinst)
	BCPLJNZ  = 0x0D // JNZ w                            (1 or 3 µinst)
	BCPLCALL = 0x0E // CALL w:  call; ACC carries arg   (≈16 µinst)
	BCPLRET  = 0x0F // RET:     return; ACC = result    (12 µinst)
	BCPLLDG  = 0x10 // LDG a:   ACC ← global a          (2 µinst)
	BCPLSTG  = 0x11 // STG a:   global a ← ACC          (2 µinst)
	BCPLLDIX = 0x12 // LDIX a:  ACC ← mem[local a + ACC] (5 µinst)
	BCPLHALT = 0x1F
)

// BuildBCPL assembles the BCPL emulator.
func BuildBCPL() (*Program, error) {
	b := masm.NewBuilder()
	emitBoot(b)
	emitBCPLHandlers(b)
	p, err := b.Assemble()
	if err != nil {
		return nil, err
	}
	return finishBCPL(p, "")
}

// finishBCPL builds the decode table from the placed (or relocated) image.
func finishBCPL(p *masm.Program, prefix string) (*Program, error) {
	table, ops, err := buildTable(p, prefix, []opdef{
		{BCPLLDK, "LDK", "b.ldk", 1, false},
		{BCPLLDW, "LDW", "b.ldw", 2, true},
		{BCPLLDL, "LDL", "b.ldl", 1, false},
		{BCPLSTL, "STL", "b.stl", 1, false},
		{BCPLADDL, "ADDL", "b.addl", 1, false},
		{BCPLSUBL, "SUBL", "b.subl", 1, false},
		{BCPLANDL, "ANDL", "b.andl", 1, false},
		{BCPLORL, "ORL", "b.orl", 1, false},
		{BCPLADDK, "ADDK", "b.addk", 1, false},
		{BCPLNEG, "NEG", "b.neg", 0, false},
		{BCPLJMP, "JMP", "b.jmp", 2, true},
		{BCPLJZ, "JZ", "b.jz", 2, true},
		{BCPLJNZ, "JNZ", "b.jnz", 2, true},
		{BCPLCALL, "CALL", "b.call", 2, true},
		{BCPLRET, "RET", "b.ret", 0, false},
		{BCPLLDG, "LDG", "b.ldg", 1, false},
		{BCPLSTG, "STG", "b.stg", 1, false},
		{BCPLLDIX, "LDIX", "b.ldix", 1, false},
		{BCPLHALT, "HALT", "op.halt", 0, false},
	})
	if err != nil {
		return nil, err
	}
	return &Program{
		Name: "bcpl", Micro: p, Table: table,
		Boot: p.MustEntry(prefix + "boot"), Opcodes: ops, RestMB: MBLocal,
	}, nil
}

// emitBCPLHandlers writes the BCPL microcode. Conventions: T is the
// accumulator (preserved across opcodes), MEMBASE rests at MBLocal, the
// one argument of a call travels in the accumulator.
func emitBCPLHandlers(b *masm.Builder) {
	jump := masm.IFUJump()

	b.EmitAt("b.ldk", masm.I{A: microcode.ASelIFUData, ALU: microcode.ALUA,
		LC: microcode.LCLoadT, Flow: jump})
	b.EmitAt("b.ldw", masm.I{A: microcode.ASelIFUData, ALU: microcode.ALUA,
		LC: microcode.LCLoadT, Flow: jump})

	b.EmitAt("b.ldl", masm.I{A: microcode.ASelFetchIFU})
	b.Emit(masm.I{ALU: microcode.ALUB, B: microcode.BSelMD, LC: microcode.LCLoadT, Flow: jump})

	// STL: one microinstruction — operand is the address, ACC the data.
	b.EmitAt("b.stl", masm.I{A: microcode.ASelStoreIFU, B: microcode.BSelT, Flow: jump})

	// ACC-memory operators.
	memop := func(label string, fn microcode.ALUFn) {
		b.EmitAt(label, masm.I{A: microcode.ASelFetchIFU})
		b.Emit(masm.I{A: microcode.ASelT, B: microcode.BSelMD, ALU: fn,
			LC: microcode.LCLoadT, Flow: jump})
	}
	memop("b.addl", microcode.ALUAplusB)
	memop("b.subl", microcode.ALUAminusB)
	memop("b.andl", microcode.ALUAandB)
	memop("b.orl", microcode.ALUAorB)

	b.EmitAt("b.addk", masm.I{A: microcode.ASelIFUData, B: microcode.BSelT,
		ALU: microcode.ALUAplusB, LC: microcode.LCLoadT, Flow: jump})
	b.EmitAt("b.neg", masm.I{A: microcode.ASelT, Const: 0, HasConst: true,
		ALU: microcode.ALUBminusA, LC: microcode.LCLoadT, Flow: jump})

	// Jumps keep the accumulator intact by staging the target in scratch RM.
	b.EmitAt("b.jmp", masm.I{A: microcode.ASelIFUData, ALU: microcode.ALUA,
		LC: microcode.LCLoadRM, R: rTmp})
	b.Emit(masm.I{B: microcode.BSelRM, R: rTmp, FF: microcode.FFIFUReset})
	b.Emit(masm.I{Flow: jump})

	condJump := func(label string, takenOnZero bool) {
		no, yes := label+".no", label+".yes"
		elseL, thenL := no, yes
		if !takenOnZero {
			elseL, thenL = yes, no
		}
		b.EmitAt(label, masm.I{A: microcode.ASelT, ALU: microcode.ALUA,
			Flow: masm.Branch(microcode.CondALUZero, elseL, thenL)})
		b.EmitAt(no, masm.I{Flow: jump})
		b.EmitAt(yes, masm.I{A: microcode.ASelIFUData, ALU: microcode.ALUA,
			LC: microcode.LCLoadRM, R: rTmp})
		b.Emit(masm.I{B: microcode.BSelRM, R: rTmp, FF: microcode.FFIFUReset})
		b.Emit(masm.I{Flow: jump})
	}
	condJump("b.jz", true)
	condJump("b.jnz", false)

	// CALL w: w is the function header slot (entry PC, ignored-arg-count).
	// The single argument stays in the accumulator; the callee's frame gets
	// the caller's L and return PC.
	b.EmitAt("b.call", masm.I{A: microcode.ASelIFUData, ALU: microcode.ALUA,
		LC: microcode.LCLoadRM, R: rHdr})
	b.Emit(masm.I{A: microcode.ASelFetch, R: rHdr, FF: microcode.FFMemBaseBase + MBGlobal})
	b.Emit(masm.I{ALU: microcode.ALUB, B: microcode.BSelMD, LC: microcode.LCLoadRM, R: rPC})
	// Allocate a frame from the free list (zero head = exhausted: trap).
	b.Emit(masm.I{A: microcode.ASelFetch, R: rAV, FF: microcode.FFMemBaseBase + MBSys})
	b.Emit(masm.I{ALU: microcode.ALUB, B: microcode.BSelMD, LC: microcode.LCLoadRM, R: rFB,
		Flow: masm.Branch(microcode.CondALUZero, "b.call.ok", "b.call.exh")})
	b.EmitAt("b.call.exh", masm.I{Flow: masm.Goto("illegal")})
	b.EmitAt("b.call.ok", masm.I{ALU: microcode.ALUB, B: microcode.BSelMD, LC: microcode.LCLoadRM, R: rNew})
	b.Emit(masm.I{A: microcode.ASelFetch, R: rFB})
	b.Emit(masm.I{A: microcode.ASelStore, R: rAV, B: microcode.BSelMD})
	// Save the caller's L and return PC through Q (T carries the argument).
	b.Emit(masm.I{B: microcode.BSelRM, R: rL, FF: microcode.FFPutQ})
	b.Emit(masm.I{A: microcode.ASelStore, R: rNew, B: microcode.BSelQ,
		ALU: microcode.ALUAplus1, LC: microcode.LCLoadRM})
	b.Emit(masm.I{FF: microcode.FFGetMacroPC, LC: microcode.LCLoadRM, R: rTmp})
	b.Emit(masm.I{B: microcode.BSelRM, R: rTmp, FF: microcode.FFPutQ})
	b.Emit(masm.I{A: microcode.ASelStore, R: rNew, B: microcode.BSelQ})
	// Rebase and go.
	b.Emit(masm.I{A: microcode.ASelRM, R: rFB, ALU: microcode.ALUA,
		LC: microcode.LCLoadRM, FF: microcode.FFRMDestBase + rL})
	b.Emit(masm.I{FF: microcode.FFMemBaseBase + MBLocal})
	b.Emit(masm.I{B: microcode.BSelRM, R: rL, FF: microcode.FFPutBaseLo})
	b.Emit(masm.I{B: microcode.BSelRM, R: rPC, FF: microcode.FFIFUReset})
	b.Emit(masm.I{Flow: jump})

	// RET: result stays in the accumulator.
	b.EmitAt("b.ret", masm.I{A: microcode.ASelFetch, R: rZero})
	b.Emit(masm.I{ALU: microcode.ALUB, B: microcode.BSelMD, LC: microcode.LCLoadRM, R: rTmp})
	b.Emit(masm.I{A: microcode.ASelFetch, R: rOne})
	b.Emit(masm.I{ALU: microcode.ALUB, B: microcode.BSelMD, LC: microcode.LCLoadRM, R: rTmp2})
	b.Emit(masm.I{B: microcode.BSelRM, R: rL, FF: microcode.FFPutQ})
	b.Emit(masm.I{A: microcode.ASelFetch, R: rAV, FF: microcode.FFMemBaseBase + MBSys})
	b.Emit(masm.I{A: microcode.ASelStore, R: rL, B: microcode.BSelMD})
	b.Emit(masm.I{A: microcode.ASelStore, R: rAV, B: microcode.BSelQ})
	b.Emit(masm.I{A: microcode.ASelRM, R: rTmp, ALU: microcode.ALUA,
		LC: microcode.LCLoadRM, FF: microcode.FFRMDestBase + rL})
	b.Emit(masm.I{FF: microcode.FFMemBaseBase + MBLocal})
	b.Emit(masm.I{B: microcode.BSelRM, R: rL, FF: microcode.FFPutBaseLo})
	b.Emit(masm.I{B: microcode.BSelRM, R: rTmp2, FF: microcode.FFIFUReset})
	b.Emit(masm.I{Flow: jump})

	// Globals.
	b.EmitAt("b.ldg", masm.I{A: microcode.ASelFetchIFU, FF: microcode.FFMemBaseBase + MBGlobal})
	b.Emit(masm.I{ALU: microcode.ALUB, B: microcode.BSelMD, LC: microcode.LCLoadT,
		FF: microcode.FFMemBaseBase + MBLocal, Flow: jump})
	b.EmitAt("b.stg", masm.I{A: microcode.ASelStoreIFU, B: microcode.BSelT,
		FF: microcode.FFMemBaseBase + MBGlobal})
	b.Emit(masm.I{FF: microcode.FFMemBaseBase + MBLocal, Flow: jump})

	// LDIX a: ACC ← mem[local a + ACC] (vector indexing; the address is
	// absolute, BCPL-style).
	b.EmitAt("b.ldix", masm.I{A: microcode.ASelFetchIFU})
	b.Emit(masm.I{A: microcode.ASelMD, B: microcode.BSelT, ALU: microcode.ALUAplusB,
		LC: microcode.LCLoadRM, R: rTmp})
	b.Emit(masm.I{A: microcode.ASelFetch, R: rTmp, FF: microcode.FFMemBaseBase + MBSys})
	b.Emit(masm.I{ALU: microcode.ALUB, B: microcode.BSelMD, LC: microcode.LCLoadT})
	b.Emit(masm.I{FF: microcode.FFMemBaseBase + MBLocal, Flow: jump})
}
