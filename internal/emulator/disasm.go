package emulator

import (
	"fmt"
	"strings"
)

// Disassemble renders a macroinstruction byte stream against an emulator's
// decode table, one instruction per line with byte offsets — the
// macro-level counterpart of masm.Program.Listing.
func Disassemble(p *Program, code []byte) string {
	var b strings.Builder
	i := 0
	for i < len(code) {
		op := code[i]
		e := p.Table[op]
		if !e.Valid {
			fmt.Fprintf(&b, "%4d: %02x          ??\n", i, op)
			i++
			continue
		}
		switch {
		case e.Operands == 0:
			fmt.Fprintf(&b, "%4d: %02x          %s\n", i, op, e.Name)
			i++
		case e.Operands == 1 && i+1 < len(code):
			fmt.Fprintf(&b, "%4d: %02x %02x       %s %d\n", i, op, code[i+1], e.Name, code[i+1])
			i += 2
		case e.Operands == 2 && i+2 < len(code):
			if e.Wide {
				v := uint16(code[i+1])<<8 | uint16(code[i+2])
				fmt.Fprintf(&b, "%4d: %02x %02x %02x    %s %d\n", i, op, code[i+1], code[i+2], e.Name, v)
			} else {
				fmt.Fprintf(&b, "%4d: %02x %02x %02x    %s %d,%d\n", i, op, code[i+1], code[i+2], e.Name, code[i+1], code[i+2])
			}
			i += 3
		default:
			fmt.Fprintf(&b, "%4d: %02x          %s (truncated operands)\n", i, op, e.Name)
			i = len(code)
		}
	}
	return b.String()
}
