package emulator

import "dorado/internal/masm"

// SystemImage is the entire emulator suite in one microstore — the way the
// production Dorado's writable store held all of its microcode at once
// (§7's "essentially full microstore" was the emulators plus I/O handlers
// plus BitBlt). Every component keeps its own pages; symbols carry a
// component prefix ("mesa/boot", "lisp/l.callf", ...). A machine loaded
// with the image can boot any of the four languages by installing that
// language's view.
type SystemImage struct {
	// Micro is the combined microstore (shared by every view below).
	Micro *masm.Program
	// Mesa, BCPL, Lisp, Smalltalk are the per-language views: decode
	// tables and boot addresses resolved against the combined image.
	Mesa, BCPL, Lisp, Smalltalk *Program
}

// BuildSystemImage assembles the four emulators and splices them into a
// single microstore image.
func BuildSystemImage() (*SystemImage, error) {
	type part struct {
		name  string
		build func() (*Program, error)
	}
	parts := []part{
		{"mesa", BuildMesa},
		{"bcpl", BuildBCPL},
		{"lisp", BuildLisp},
		{"smalltalk", BuildSmalltalk},
	}
	combined := masm.EmptyProgram()
	for _, pt := range parts {
		ep, err := pt.build()
		if err != nil {
			return nil, &InstallError{Emulator: pt.name, Stage: "assemble", Err: err}
		}
		combined, err = masm.SpliceAs(combined, ep.Micro, pt.name+"/")
		if err != nil {
			return nil, &InstallError{Emulator: pt.name, Stage: "splice", Err: err}
		}
	}
	img := &SystemImage{Micro: combined}
	var err error
	if img.Mesa, err = finishMesa(combined, "mesa/"); err != nil {
		return nil, err
	}
	if img.BCPL, err = finishBCPL(combined, "bcpl/"); err != nil {
		return nil, err
	}
	if img.Lisp, err = finishLisp(combined, "lisp/"); err != nil {
		return nil, err
	}
	if img.Smalltalk, err = finishSmalltalk(combined, "smalltalk/"); err != nil {
		return nil, err
	}
	return img, nil
}
