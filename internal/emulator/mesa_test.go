package emulator

import (
	"testing"

	"dorado/internal/core"
)

// newMesaMachine builds a machine with the Mesa emulator installed and the
// given macroprogram loaded and booted.
func newMesaMachine(t *testing.T, build func(a *Asm)) (*core.Machine, *Program) {
	t.Helper()
	p, err := BuildMesa()
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.New(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	a := NewAsm(p)
	build(a)
	code, err := a.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	LoadCode(m, code)
	if err := p.InstallOn(m); err != nil {
		t.Fatal(err)
	}
	return m, p
}

// runToHalt runs the machine and returns the popped evaluation stack as a
// slice (bottom first).
func runToHalt(t *testing.T, m *core.Machine, max uint64) []uint16 {
	t.Helper()
	if !m.Run(max) {
		t.Fatalf("did not halt in %d cycles (task %d pc %v)", max, m.CurTask(), m.CurPC())
	}
	n := int(m.StackPtr() & 0x3F)
	out := make([]uint16, n)
	for i := 1; i <= n; i++ {
		out[i-1] = m.Stack(i)
	}
	return out
}

func TestMesaArithmetic(t *testing.T) {
	m, _ := newMesaMachine(t, func(a *Asm) {
		a.OpB("LIB", 10).OpB("LIB", 32).Op("ADD")   // 42
		a.OpW("LIW", 1000).OpB("LIB", 58).Op("SUB") // 942
		a.Op("ADD")                                 // 984
		a.Op("HALT")
	})
	st := runToHalt(t, m, 10000)
	if len(st) != 1 || st[0] != 984 {
		t.Fatalf("stack = %v, want [984]", st)
	}
}

func TestMesaLogicAndUnary(t *testing.T) {
	m, _ := newMesaMachine(t, func(a *Asm) {
		a.OpW("LIW", 0xF0F0).OpW("LIW", 0xFF00).Op("AND") // 0xF000
		a.OpW("LIW", 0x000F).Op("OR")                     // 0xF00F
		a.OpW("LIW", 0xFFFF).Op("XOR")                    // 0x0FF0
		a.Op("INC")                                       // 0x0FF1
		a.Op("NEG")                                       // -0x0FF1
		a.Op("HALT")
	})
	st := runToHalt(t, m, 10000)
	var want uint16 = 0x0FF1
	want = -want
	if len(st) != 1 || st[0] != want {
		t.Fatalf("stack = %v, want [%#04x]", st, want)
	}
}

func TestMesaDupDrop(t *testing.T) {
	m, _ := newMesaMachine(t, func(a *Asm) {
		a.OpB("LIB", 7).Op("DUP").Op("ADD") // 14
		a.OpB("LIB", 9).Op("DROP")
		a.Op("HALT")
	})
	st := runToHalt(t, m, 10000)
	if len(st) != 1 || st[0] != 14 {
		t.Fatalf("stack = %v, want [14]", st)
	}
}

func TestMesaLocalsViaFrame(t *testing.T) {
	// SL then LL round-trips through the frame in memory.
	m, _ := newMesaMachine(t, func(a *Asm) {
		a.OpW("LIW", 0x1234&0x00FF|0x1200).OpB("SL", 5) // store 0x1234-ish... use 0x1200|0x34
		a.OpB("LL", 5).OpB("LL", 5).Op("ADD")
		a.Op("HALT")
	})
	st := runToHalt(t, m, 10000)
	want := uint16(0x1234&0x00FF|0x1200) * 2
	if len(st) != 1 || st[0] != want {
		t.Fatalf("stack = %v, want [%#04x]", st, want)
	}
	// The value landed in the boot frame.
	if got := m.Mem().Peek(VAFrames + 5); got != 0x1234&0x00FF|0x1200 {
		t.Errorf("frame[5] = %#04x", got)
	}
}

func TestMesaGlobals(t *testing.T) {
	m, _ := newMesaMachine(t, func(a *Asm) {
		a.OpB("LIB", 77).OpB("SG", 20)
		a.OpB("LG", 20).OpB("LG", 20).Op("ADD")
		a.Op("HALT")
	})
	if got := m.Mem().Peek(VAGlobal + 20); got != 0 {
		t.Fatalf("global pre-state dirty")
	}
	st := runToHalt(t, m, 10000)
	if len(st) != 1 || st[0] != 154 {
		t.Fatalf("stack = %v, want [154]", st)
	}
	if got := m.Mem().Peek(VAGlobal + 20); got != 77 {
		t.Errorf("global[20] = %d", got)
	}
}

func TestMesaJumps(t *testing.T) {
	m, _ := newMesaMachine(t, func(a *Asm) {
		a.OpB("LIB", 0).OpL("JZ", "taken")
		a.OpB("LIB", 99).Op("HALT") // skipped
		a.Label("taken")
		a.OpB("LIB", 1).OpL("JNZ", "t2")
		a.OpB("LIB", 98).Op("HALT") // skipped
		a.Label("t2")
		a.OpB("LIB", 5).OpL("JZ", "bad") // not taken
		a.OpB("LIB", 42)
		a.OpL("JMP", "end")
		a.Label("bad")
		a.OpB("LIB", 97)
		a.Label("end")
		a.Op("HALT")
	})
	st := runToHalt(t, m, 10000)
	if len(st) != 1 || st[0] != 42 {
		t.Fatalf("stack = %v, want [42]", st)
	}
}

func TestMesaLoopSum(t *testing.T) {
	// Sum 1..10 with a loop using locals: local0 = i, local1 = acc.
	m, _ := newMesaMachine(t, func(a *Asm) {
		a.OpB("LIB", 10).OpB("SL", 0) // i = 10
		a.OpB("LIB", 0).OpB("SL", 1)  // acc = 0
		a.Label("loop")
		a.OpB("LL", 1).OpB("LL", 0).Op("ADD").OpB("SL", 1)  // acc += i
		a.OpB("LL", 0).OpW("LIW", 1).Op("SUB").OpB("SL", 0) // i--
		a.OpB("LL", 0).OpL("JNZ", "loop")
		a.OpB("LL", 1)
		a.Op("HALT")
	})
	st := runToHalt(t, m, 100000)
	if len(st) != 1 || st[0] != 55 {
		t.Fatalf("stack = %v, want [55]", st)
	}
}

func TestMesaCallReturn(t *testing.T) {
	// f(x, y) = x - y, called twice; verifies frame save/restore and the
	// args-in-pop-order convention (local0 = last arg = y).
	m, _ := newMesaMachine(t, func(a *Asm) {
		a.OpB("LIB", 50).OpB("LIB", 8).OpW("CALL", 100) // f(50,8) = 42
		a.OpB("LIB", 10).OpB("LIB", 3).OpW("CALL", 100) // f(10,3) = 7
		a.Op("ADD")                                     // 49
		a.Op("HALT")
		a.Label("f")
		// local0 = y (popped first), local1 = x.
		a.OpB("LL", 3).OpB("LL", 2).Op("SUB") // x - y  (locals 2,3 = args)
		a.Op("RET")
	})
	// Header slot 100 → entry at label "f":
	// byte layout LIB(2)+LIB(2)+CALL(3) ×2 + ADD(1) + HALT(1) = 16.
	DefineFunc(m, 100, 16, 2)
	got := runToHalt(t, m, 100000)
	if len(got) != 1 || got[0] != 49 {
		t.Fatalf("stack = %v, want [49]", got)
	}
}

func TestMesaNestedCalls(t *testing.T) {
	// g(x) = f(x) + 1, f(x) = x*2 (via ADD): two frame levels.
	m, _ := newMesaMachine(t, func(a *Asm) {
		a.OpB("LIB", 20).OpW("CALL", 110) // g(20) = 41
		a.Op("HALT")
		a.Label("g")                    // byte 6
		a.OpB("LL", 2).OpW("CALL", 120) // f(x)
		a.Op("INC")
		a.Op("RET")
		a.Label("f")
		a.OpB("LL", 2).OpB("LL", 2).Op("ADD")
		a.Op("RET")
	})
	// g at byte 6; f at byte 6 + LL(2)+CALL(3)+INC(1)+RET(1) = 13.
	DefineFunc(m, 110, 6, 1)
	DefineFunc(m, 120, 13, 1)
	st := runToHalt(t, m, 100000)
	if len(st) != 1 || st[0] != 41 {
		t.Fatalf("stack = %v, want [41]", st)
	}
}

func TestMesaFields(t *testing.T) {
	// RF/WF with a pre-encoded SHIFTCTL descriptor: field of width 4 at
	// bit 8.
	m, _ := newMesaMachine(t, func(a *Asm) {
		// mem[0x0100] = 0xABCD (poked below). Extract bits 8..11 → 0xB.
		a.OpW("LIW", 0x0100)
		a.OpW("RF", ExtractCtl(8, 4))
		// Insert 0x7 into bits 0..3 of mem[0x0100]: push addr, push val.
		a.OpW("LIW", 0x0100).OpB("LIB", 7)
		a.OpW("WF", InsertCtl(0, 4))
		a.Op("HALT")
	})
	m.Mem().Poke(0x0100, 0xABCD)
	st := runToHalt(t, m, 100000)
	if len(st) != 1 || st[0] != 0xB {
		t.Fatalf("extracted field = %v, want [0xB]", st)
	}
	if got := m.Mem().Peek(0x0100); got != 0xABC7 {
		t.Errorf("after WF mem = %#04x, want 0xabc7", got)
	}
}

func TestMesaMulAndShift(t *testing.T) {
	m, _ := newMesaMachine(t, func(a *Asm) {
		a.OpB("LIB", 12).OpB("LIB", 11).Op("MUL") // 132
		a.OpB("LSH", 3)                           // 1056
		a.Op("HALT")
	})
	st := runToHalt(t, m, 100000)
	if len(st) != 1 || st[0] != 1056 {
		t.Fatalf("stack = %v, want [1056]", st)
	}
}

func TestMesaSimpleOpsAreOneCycle(t *testing.T) {
	// The paper's headline: a simple macroinstruction executes in one
	// microcycle. With a warm IFU, N LIB/DROP pairs should cost ≈2N cycles
	// plus startup.
	const n = 100
	m, _ := newMesaMachine(t, func(a *Asm) {
		for i := 0; i < n; i++ {
			a.OpB("LIB", uint8(i)).Op("DROP")
		}
		a.Op("HALT")
	})
	runToHalt(t, m, 100000)
	perOp := float64(m.Cycle()) / float64(2*n)
	if perOp > 1.6 {
		t.Errorf("simple ops cost %.2f cycles each; paper claims ≈1", perOp)
	}
}
