package emulator

import (
	"fmt"

	"dorado/internal/core"
	"dorado/internal/microcode"
)

// Asm assembles macroinstruction byte programs against an emulator's
// opcode table, with labels and wide-operand fixups.
type Asm struct {
	prog   *Program
	code   []byte
	labels map[string]uint16
	fix    []fixup
	err    error
}

type fixup struct {
	pos   int
	label string
}

// NewAsm returns an assembler for p's instruction set.
func NewAsm(p *Program) *Asm {
	return &Asm{prog: p, labels: map[string]uint16{}}
}

func (a *Asm) fail(format string, args ...any) *Asm {
	if a.err == nil {
		a.err = fmt.Errorf("emulator asm: "+format, args...)
	}
	return a
}

func (a *Asm) opcode(name string, wantOperands int) (uint8, bool) {
	op, ok := a.prog.Opcodes[name]
	if !ok {
		a.fail("unknown opcode %q", name)
		return 0, false
	}
	e := a.prog.Table[op]
	if e.Operands != wantOperands {
		a.fail("opcode %q takes %d operand bytes, got %d", name, e.Operands, wantOperands)
		return 0, false
	}
	return op, true
}

// Label defines a label at the current byte PC.
func (a *Asm) Label(name string) *Asm {
	if _, dup := a.labels[name]; dup {
		return a.fail("duplicate label %q", name)
	}
	a.labels[name] = uint16(len(a.code))
	return a
}

// PC returns the current byte position.
func (a *Asm) PC() uint16 { return uint16(len(a.code)) }

// LabelPC returns the byte position of a defined label.
func (a *Asm) LabelPC(name string) (uint16, error) {
	pc, ok := a.labels[name]
	if !ok {
		return 0, fmt.Errorf("emulator asm: no label %q", name)
	}
	return pc, nil
}

// Op emits a zero-operand opcode.
func (a *Asm) Op(name string) *Asm {
	if op, ok := a.opcode(name, 0); ok {
		a.code = append(a.code, op)
	}
	return a
}

// OpB emits an opcode with a one-byte operand.
func (a *Asm) OpB(name string, operand uint8) *Asm {
	if op, ok := a.opcode(name, 1); ok {
		a.code = append(a.code, op, operand)
	}
	return a
}

// OpW emits an opcode with a wide (two-byte) operand.
func (a *Asm) OpW(name string, operand uint16) *Asm {
	if op, ok := a.opcode(name, 2); ok {
		if !a.prog.Table[op].Wide {
			return a.fail("opcode %q takes two byte operands; use OpB2", name)
		}
		a.code = append(a.code, op, uint8(operand>>8), uint8(operand))
	}
	return a
}

// OpB2 emits an opcode with two independent one-byte operands.
func (a *Asm) OpB2(name string, b1, b2 uint8) *Asm {
	if op, ok := a.opcode(name, 2); ok {
		if a.prog.Table[op].Wide {
			return a.fail("opcode %q takes one wide operand; use OpW", name)
		}
		a.code = append(a.code, op, b1, b2)
	}
	return a
}

// OpL emits an opcode whose wide operand is the byte PC of a label,
// resolved when Bytes is called.
func (a *Asm) OpL(name, label string) *Asm {
	if op, ok := a.opcode(name, 2); ok {
		a.fix = append(a.fix, fixup{pos: len(a.code) + 1, label: label})
		a.code = append(a.code, op, 0, 0)
	}
	return a
}

// Bytes resolves fixups and returns the program.
func (a *Asm) Bytes() ([]byte, error) {
	if a.err != nil {
		return nil, a.err
	}
	for _, f := range a.fix {
		target, ok := a.labels[f.label]
		if !ok {
			return nil, fmt.Errorf("emulator asm: undefined label %q", f.label)
		}
		a.code[f.pos] = uint8(target >> 8)
		a.code[f.pos+1] = uint8(target)
	}
	return a.code, nil
}

// Install loads the assembled bytes into the machine's code area. A
// failed assembly surfaces as an *InstallError wrapping the first error.
func (a *Asm) Install(m *core.Machine) error {
	code, err := a.Bytes()
	if err != nil {
		return &InstallError{Emulator: a.prog.Name, Stage: "macrocode", Err: err}
	}
	LoadCode(m, code)
	return nil
}

// ExtractCtl returns the RF wide operand (a SHIFTCTL register value) that
// extracts the w-bit field at bit position pos of a memory word.
func ExtractCtl(pos, w uint8) uint16 {
	return microcode.EncodeShiftCtl(microcode.FieldExtract(pos, w))
}

// InsertCtl returns the WF wide operand that inserts a right-justified
// w-bit value at bit position pos of a memory word.
func InsertCtl(pos, w uint8) uint16 {
	return microcode.EncodeShiftCtl(microcode.FieldInsert(pos, w))
}

// DefineFunc writes a two-word function header {entry byte PC, nargs} at
// word `slot` of the global area; CALL's wide operand names the slot.
func DefineFunc(m *core.Machine, slot uint16, entryPC uint16, nargs uint16) {
	m.Mem().Poke(VAGlobal+uint32(slot), entryPC)
	m.Mem().Poke(VAGlobal+uint32(slot)+1, nargs)
}

// DefineLispFunc writes a Lisp function header {entry byte PC, nargs,
// parameter symbol addresses...} at global slot; each symbol address names
// a two-word value cell (used for shallow binding).
func DefineLispFunc(m *core.Machine, slot uint16, entryPC uint16, syms []uint16) {
	mem := m.Mem()
	mem.Poke(VAGlobal+uint32(slot), entryPC)
	mem.Poke(VAGlobal+uint32(slot)+1, uint16(len(syms)))
	for i, sym := range syms {
		mem.Poke(VAGlobal+uint32(slot)+2+uint32(i), sym)
	}
}
