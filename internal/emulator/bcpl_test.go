package emulator

import (
	"testing"

	"dorado/internal/core"
)

func newBCPLMachine(t *testing.T, build func(a *Asm)) *core.Machine {
	t.Helper()
	p, err := BuildBCPL()
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.New(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	a := NewAsm(p)
	build(a)
	code, err := a.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	LoadCode(m, code)
	if err := p.InstallOn(m); err != nil {
		t.Fatal(err)
	}
	return m
}

func bcplRun(t *testing.T, m *core.Machine, max uint64) uint16 {
	t.Helper()
	if !m.Run(max) {
		t.Fatalf("did not halt (task %d pc %v)", m.CurTask(), m.CurPC())
	}
	return m.T(0) // the accumulator
}

func TestBCPLAccumulatorOps(t *testing.T) {
	m := newBCPLMachine(t, func(a *Asm) {
		a.OpB("LDK", 30).OpB("ADDK", 12) // 42
		a.OpB("STL", 4)
		a.OpB("LDK", 0).OpB("ADDL", 4).OpB("ADDL", 4) // 84
		a.OpB("SUBL", 4)                              // 42
		a.Op("HALT")
	})
	if got := bcplRun(t, m, 10000); got != 42 {
		t.Fatalf("ACC = %d, want 42", got)
	}
}

func TestBCPLLogicAndNeg(t *testing.T) {
	m := newBCPLMachine(t, func(a *Asm) {
		a.OpW("LDW", 0xF0F0).OpB("STL", 3)
		a.OpW("LDW", 0x0FF0).OpB("ANDL", 3) // 0x00F0
		a.OpB("STL", 4)
		a.OpW("LDW", 0x0F00).OpB("ORL", 4) // 0x0FF0
		a.Op("NEG")
		a.Op("HALT")
	})
	var want uint16 = 0x0FF0
	want = -want
	if got := bcplRun(t, m, 10000); got != want {
		t.Fatalf("ACC = %#04x, want %#04x", got, want)
	}
}

func TestBCPLJumps(t *testing.T) {
	m := newBCPLMachine(t, func(a *Asm) {
		a.OpB("LDK", 0).OpL("JZ", "z")
		a.OpB("LDK", 99).Op("HALT")
		a.Label("z")
		a.OpB("LDK", 5).OpL("JNZ", "nz")
		a.OpB("LDK", 98).Op("HALT")
		a.Label("nz")
		a.OpL("JMP", "end")
		a.OpB("LDK", 97)
		a.Label("end")
		a.Op("HALT")
	})
	if got := bcplRun(t, m, 10000); got != 5 {
		t.Fatalf("ACC = %d, want 5", got)
	}
}

func TestBCPLCountdownLoop(t *testing.T) {
	// Sum 10..1 via a countdown loop (slots 0,1 of a frame are its links).
	m2 := newBCPLMachine(t, func(a *Asm) {
		a.OpB("LDK", 1).OpB("STL", 3)  // one = 1
		a.OpB("LDK", 10).OpB("STL", 2) // i = 10
		a.OpB("LDK", 0).OpB("STG", 0)
		a.Label("loop")
		a.OpB("LDG", 0).OpB("ADDL", 2).OpB("STG", 0)
		a.OpB("LDL", 2).OpB("SUBL", 3).OpB("STL", 2)
		a.OpL("JNZ", "loop")
		a.OpB("LDG", 0)
		a.Op("HALT")
	})
	if got := bcplRun(t, m2, 100000); got != 55 {
		t.Fatalf("sum = %d, want 55", got)
	}
}

func TestBCPLCallReturn(t *testing.T) {
	// f(x) = x + 7, argument and result in the accumulator.
	m := newBCPLMachine(t, func(a *Asm) {
		a.OpB("LDK", 35).OpW("CALL", 100)
		a.Op("HALT")
		a.Label("f") // byte 6
		a.OpB("STL", 2)
		a.OpB("ADDK", 7)
		a.Op("RET")
	})
	DefineFunc(m, 100, 6, 1)
	if got := bcplRun(t, m, 100000); got != 42 {
		t.Fatalf("f(35) = %d, want 42", got)
	}
}

func TestBCPLNestedCallsPreserveLocals(t *testing.T) {
	// g(x) = f(x+1) + local, proving frames are independent.
	m := newBCPLMachine(t, func(a *Asm) {
		a.OpB("LDK", 10).OpW("CALL", 100) // g(10)
		a.Op("HALT")
		a.Label("g") // byte 6
		a.OpB("STL", 2)
		a.OpB("ADDK", 1).OpW("CALL", 110) // f(11) = 22
		a.OpB("ADDL", 2)                  // + 10 = 32
		a.Op("RET")
		a.Label("f") // byte 6+2+2+3+2+1 = 16
		a.OpB("STL", 2)
		a.OpB("ADDL", 2) // x*2
		a.Op("RET")
	})
	DefineFunc(m, 100, 6, 1)
	DefineFunc(m, 110, 16, 1)
	if got := bcplRun(t, m, 100000); got != 32 {
		t.Fatalf("g(10) = %d, want 32", got)
	}
}

func TestBCPLIndexedLoad(t *testing.T) {
	m := newBCPLMachine(t, func(a *Asm) {
		a.OpW("LDW", 0x0200).OpB("STL", 2) // vector base
		a.OpB("LDK", 3).OpB("LDIX", 2)     // ACC ← mem[0x200+3]
		a.Op("HALT")
	})
	m.Mem().Poke(0x0203, 777)
	if got := bcplRun(t, m, 10000); got != 777 {
		t.Fatalf("LDIX = %d, want 777", got)
	}
}
