package emulator

import (
	"errors"
	"testing"

	"dorado/internal/core"
)

func TestAsmInstallErrorIsTyped(t *testing.T) {
	p, err := BuildMesa()
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.New(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	a := NewAsm(p)
	a.OpL("jmp", "nowhere") // undefined label: assembly must fail
	err = a.Install(m)
	if err == nil {
		t.Fatal("Install succeeded with an undefined label")
	}
	var ie *InstallError
	if !errors.As(err, &ie) {
		t.Fatalf("error %v (%T) is not an *InstallError", err, err)
	}
	if ie.Stage != "macrocode" || ie.Emulator != "mesa" {
		t.Errorf("InstallError fields = %q/%q, want mesa/macrocode", ie.Emulator, ie.Stage)
	}
	if ie.Unwrap() == nil {
		t.Error("InstallError does not wrap a cause")
	}
}

func TestInstallErrorMessage(t *testing.T) {
	e := &InstallError{Emulator: "lisp", Stage: "splice", Err: errors.New("boom")}
	if got, want := e.Error(), "emulator lisp: splice: boom"; got != want {
		t.Errorf("Error() = %q, want %q", got, want)
	}
	anon := &InstallError{Stage: "assemble", Err: errors.New("boom")}
	if got, want := anon.Error(), "emulator: assemble: boom"; got != want {
		t.Errorf("Error() = %q, want %q", got, want)
	}
}
