// Package emulator contains the byte-code emulators of §7 of the paper:
// microcode interpreters for four language virtual machines — Mesa, BCPL,
// Lisp, and Smalltalk — written against the internal/masm microassembler
// and executed by the internal/core processor through the IFU.
//
// The paper's reported per-opcode costs, which experiment E2 reproduces:
//
//   - "A typical microinstruction sequence for a load or store instruction
//     is only one or two microinstructions in Mesa (or BCPL), and five in
//     Lisp."
//   - "More complex operations (such as read/write field or array element)
//     take five to ten microinstructions in Mesa and ten to twenty in Lisp.
//     Note that Lisp does runtime checking of parameters, while in Mesa
//     most checking is done at compile time."
//   - "Function calls take about 50 microinstructions for Mesa and 200 for
//     Lisp."
//
// Each emulator is an instruction-set *reconstruction* (the real Alto/Mesa
// PrincOps, Interlisp and Smalltalk-76 byte codes are far larger): the
// opcode families and their microcode structure — hardware evaluation
// stack for Mesa, an accumulator for BCPL, two-word tagged items with a
// memory stack and runtime type checks for Lisp, dynamic method lookup for
// Smalltalk — are chosen so the per-class instruction counts land where
// the paper reports them for structural reasons, not by tuning delays.
//
// Shared machine conventions (see layout.go): the hardware stack is the
// Mesa/Smalltalk evaluation stack; memory base registers 2–6 address the
// local frame, global area, memory stack, heap, and system page; RM bank 0
// registers 8–15 are the emulator's pointer registers.
package emulator
