package emulator

import (
	"testing"

	"dorado/internal/core"
)

// benchMesa runs a Mesa loop workload once per iteration, reporting
// simulated macroinstructions per host second.
func BenchmarkMesaEmulation(b *testing.B) {
	p, err := BuildMesa()
	if err != nil {
		b.Fatal(err)
	}
	m, err := core.New(core.Config{})
	if err != nil {
		b.Fatal(err)
	}
	a := NewAsm(p)
	a.OpB("LIB", 200).OpB("SL", 4)
	a.Label("loop")
	a.OpB("LL", 4).OpW("LIW", 1).Op("SUB").OpB("SL", 4)
	a.OpB("LL", 4).OpL("JNZ", "loop")
	a.Op("HALT")
	if err := a.Install(m); err != nil {
		b.Fatal(err)
	}
	var macro uint64
	start := m.Cycle()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := p.InstallOn(m); err != nil {
			b.Fatal(err)
		}
		if !m.Run(10_000_000) {
			b.Fatal("did not halt")
		}
		macro += m.IFU().Stats().Dispatches
	}
	b.ReportMetric(float64(macro)/float64(b.N), "macroinst/op")
	b.ReportMetric(float64(m.Cycle()-start)/b.Elapsed().Seconds(), "cycles/sec")
}

// steadyMesaMachine boots the Mesa emulator on an endless macroinstruction
// loop: IFU dispatch, frame load/store, and a taken conditional jump every
// iteration — the steady-state emulator workload.
func steadyMesaMachine(b *testing.B) *core.Machine {
	p, err := BuildMesa()
	if err != nil {
		b.Fatal(err)
	}
	m, err := core.New(core.Config{})
	if err != nil {
		b.Fatal(err)
	}
	a := NewAsm(p)
	a.OpB("LIB", 40).OpB("SL", 4)
	a.Label("loop")
	a.OpB("LL", 4).Op("DUP").OpB("SL", 4)
	a.OpL("JNZ", "loop") // always taken: the loop never exits
	if err := a.Install(m); err != nil {
		b.Fatal(err)
	}
	if err := p.InstallOn(m); err != nil {
		b.Fatal(err)
	}
	m.RunCycles(50_000) // past boot and cache warmup, into steady state
	return m
}

// BenchmarkStepBaseline is the acceptance benchmark for the predecoded hot
// loop: the steady-state emulator workload must simulate with zero heap
// allocations per cycle, and the cycles/sec metric is the headline host
// throughput number (compare BENCH_SIM.json).
func BenchmarkStepBaseline(b *testing.B) {
	m := steadyMesaMachine(b)
	const chunk = 10_000
	if avg := testing.AllocsPerRun(10, func() { m.RunCycles(chunk) }); avg != 0 {
		b.Fatalf("steady-state emulator workload allocates: %v allocs per %d cycles", avg, chunk)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.RunCycles(1)
	}
	reportCycleRate(b)
}

// reportCycleRate emits cycles/sec when one iteration is one cycle.
func reportCycleRate(b *testing.B) {
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "cycles/sec")
}

// BenchmarkBuildEmulators measures microcode assembly of all four.
func BenchmarkBuildEmulators(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, f := range []func() (*Program, error){BuildMesa, BuildBCPL, BuildLisp, BuildSmalltalk} {
			if _, err := f(); err != nil {
				b.Fatal(err)
			}
		}
	}
}
