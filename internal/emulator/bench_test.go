package emulator

import (
	"testing"

	"dorado/internal/core"
)

// benchMesa runs a Mesa loop workload once per iteration, reporting
// simulated macroinstructions per host second.
func BenchmarkMesaEmulation(b *testing.B) {
	p, err := BuildMesa()
	if err != nil {
		b.Fatal(err)
	}
	m, err := core.New(core.Config{})
	if err != nil {
		b.Fatal(err)
	}
	a := NewAsm(p)
	a.OpB("LIB", 200).OpB("SL", 4)
	a.Label("loop")
	a.OpB("LL", 4).OpW("LIW", 1).Op("SUB").OpB("SL", 4)
	a.OpB("LL", 4).OpL("JNZ", "loop")
	a.Op("HALT")
	if err := a.Install(m); err != nil {
		b.Fatal(err)
	}
	var macro uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := p.InstallOn(m); err != nil {
			b.Fatal(err)
		}
		if !m.Run(10_000_000) {
			b.Fatal("did not halt")
		}
		macro += m.IFU().Stats().Dispatches
	}
	b.ReportMetric(float64(macro)/float64(b.N), "macroinst/op")
}

// BenchmarkBuildEmulators measures microcode assembly of all four.
func BenchmarkBuildEmulators(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, f := range []func() (*Program, error){BuildMesa, BuildBCPL, BuildLisp, BuildSmalltalk} {
			if _, err := f(); err != nil {
				b.Fatal(err)
			}
		}
	}
}
