package emulator

import (
	"dorado/internal/masm"
	"dorado/internal/microcode"
)

// Smalltalk object conventions. Oops are single words: low bit 1 =
// SmallInteger (value in the upper 15 bits), low bit 0 = pointer to an
// object whose word 0 is its class oop. A class object is
// {metaclass, method-dictionary address, dictionary entry count}; a method
// dictionary is an array of {selector, method-header address} pairs probed
// linearly; a method header is {entry byte PC, unused}.
const (
	// SIClassSlot is the sys-page word holding the SmallInteger class
	// address (message sends to tagged integers look their class up here).
	SIClassSlot = 0x0018
)

// Smalltalk opcode bytes. The send is the point: a Smalltalk-76-style
// dynamic dispatch costs a class fetch, a dictionary probe loop, and a
// context activation — tens of microinstructions even on this hardware.
const (
	STPUSHK    = 0x01 // PUSHK w:  push SmallInteger literal    (2 µinst)
	STPUSHSELF = 0x02 // PUSHSELF: push the receiver            (3 µinst)
	STPUSHL    = 0x03 // PUSHL n:  push frame temp              (2 µinst)
	STSTL      = 0x04 // STL n:    pop into frame temp          (1 µinst)
	STPUSHIV   = 0x05 // PUSHIV n: push receiver's field n+1    (6 µinst)
	STSTIV     = 0x06 // STIV n:   pop into receiver's field    (6 µinst)
	STSEND     = 0x07 // SEND s,n: dynamic dispatch             (≈45+5·probe µinst)
	STRETTOP   = 0x08 // RETTOP:   return, top of stack = value (12 µinst)
	STADDI     = 0x09 // ADDI:     SmallInteger add, checked    (5 µinst)
	STHALT     = 0x1F
)

// BuildSmalltalk assembles the Smalltalk emulator.
func BuildSmalltalk() (*Program, error) {
	b := masm.NewBuilder()
	emitBoot(b)
	emitSmalltalkHandlers(b)
	p, err := b.Assemble()
	if err != nil {
		return nil, err
	}
	return finishSmalltalk(p, "")
}

// finishSmalltalk builds the decode table from the placed image.
func finishSmalltalk(p *masm.Program, prefix string) (*Program, error) {
	table, ops, err := buildTable(p, prefix, []opdef{
		{STPUSHK, "PUSHK", "s.pushk", 2, true},
		{STPUSHSELF, "PUSHSELF", "s.pushself", 0, false},
		{STPUSHL, "PUSHL", "s.pushl", 1, false},
		{STSTL, "STL", "s.stl", 1, false},
		{STPUSHIV, "PUSHIV", "s.pushiv", 1, false},
		{STSTIV, "STIV", "s.stiv", 1, false},
		{STSEND, "SEND", "s.send", 2, false}, // selector byte, nargs byte
		{STRETTOP, "RETTOP", "s.rettop", 0, false},
		{STADDI, "ADDI", "s.addi", 0, false},
		{STHALT, "HALT", "op.halt", 0, false},
	})
	if err != nil {
		return nil, err
	}
	return &Program{
		Name: "smalltalk", Micro: p, Table: table,
		Boot: p.MustEntry(prefix + "boot"), Opcodes: ops, RestMB: MBLocal,
	}, nil
}

// emitSmalltalkHandlers writes the Smalltalk microcode. The hardware stack
// is the evaluation stack (shared across contexts); frames hold
// [0]=L, [1]=retPC, [2]=receiver, [3..]=args in pop order, then temps;
// MEMBASE rests at MBLocal.
func emitSmalltalkHandlers(b *masm.Builder) {
	jump := masm.IFUJump()

	b.EmitAt("s.trap", masm.I{FF: microcode.FFHalt, Flow: masm.Self()})

	// PUSHK w: push the tagged SmallInteger (w<<1 | 1).
	b.EmitAt("s.pushk", masm.I{A: microcode.ASelIFUData, ALU: microcode.ALUA, LC: microcode.LCLoadT})
	b.Emit(masm.I{A: microcode.ASelT, B: microcode.BSelT, ALU: microcode.ALUAplusB,
		LC: microcode.LCLoadT})
	b.Emit(masm.I{A: microcode.ASelT, ALU: microcode.ALUAplus1, LC: microcode.LCLoadRM,
		Block: true, R: push, Flow: jump})

	// PUSHSELF.
	b.EmitAt("s.pushself", masm.I{A: microcode.ASelRM, R: rOne, ALU: microcode.ALUAplus1,
		LC: microcode.LCLoadRM, FF: microcode.FFRMDestBase + rVal})
	b.Emit(masm.I{A: microcode.ASelFetch, R: rVal})
	b.Emit(masm.I{ALU: microcode.ALUB, B: microcode.BSelMD, LC: microcode.LCLoadRM,
		Block: true, R: push, Flow: jump})

	// PUSHL / STL (frame temps, like Mesa locals).
	b.EmitAt("s.pushl", masm.I{A: microcode.ASelFetchIFU})
	b.Emit(masm.I{ALU: microcode.ALUB, B: microcode.BSelMD, LC: microcode.LCLoadRM,
		Block: true, R: push, Flow: jump})
	b.EmitAt("s.stl", masm.I{A: microcode.ASelStoreIFU, B: microcode.BSelRM,
		Block: true, R: pop, Flow: jump})

	// PUSHIV n: operand is precompiled as n+1 (field offset past the class
	// word). The receiver oop is an absolute address.
	b.EmitAt("s.pushiv", masm.I{A: microcode.ASelRM, R: rOne, ALU: microcode.ALUAplus1,
		LC: microcode.LCLoadRM, FF: microcode.FFRMDestBase + rVal})
	b.Emit(masm.I{A: microcode.ASelFetch, R: rVal})
	b.Emit(masm.I{ALU: microcode.ALUB, B: microcode.BSelMD, LC: microcode.LCLoadRM, R: rTmp})
	b.Emit(masm.I{A: microcode.ASelIFUData, B: microcode.BSelRM, R: rTmp,
		ALU: microcode.ALUAplusB, LC: microcode.LCLoadRM})
	b.Emit(masm.I{A: microcode.ASelFetch, R: rTmp, FF: microcode.FFMemBaseBase + MBSys})
	b.Emit(masm.I{ALU: microcode.ALUB, B: microcode.BSelMD, LC: microcode.LCLoadRM,
		Block: true, R: push, FF: microcode.FFMemBaseBase + MBLocal, Flow: jump})

	// STIV n: pop a value into the receiver's field.
	b.EmitAt("s.stiv", masm.I{A: microcode.ASelRM, R: rOne, ALU: microcode.ALUAplus1,
		LC: microcode.LCLoadRM, FF: microcode.FFRMDestBase + rVal})
	b.Emit(masm.I{A: microcode.ASelFetch, R: rVal})
	b.Emit(masm.I{ALU: microcode.ALUB, B: microcode.BSelMD, LC: microcode.LCLoadRM, R: rTmp})
	b.Emit(masm.I{A: microcode.ASelIFUData, B: microcode.BSelRM, R: rTmp,
		ALU: microcode.ALUAplusB, LC: microcode.LCLoadRM})
	b.Emit(masm.I{ALU: microcode.ALUA, LC: microcode.LCLoadT, Block: true, R: pop})
	b.Emit(masm.I{A: microcode.ASelStore, R: rTmp, B: microcode.BSelT,
		FF: microcode.FFMemBaseBase + MBSys})
	b.Emit(masm.I{FF: microcode.FFMemBaseBase + MBLocal, Flow: jump})

	emitSmalltalkSend(b, jump)

	// RETTOP: the result stays on the (shared) evaluation stack; restore
	// the caller's context and free the frame — same shape as Mesa RET.
	b.EmitAt("s.rettop", masm.I{A: microcode.ASelFetch, R: rZero})
	b.Emit(masm.I{ALU: microcode.ALUB, B: microcode.BSelMD, LC: microcode.LCLoadRM, R: rTmp})
	b.Emit(masm.I{A: microcode.ASelFetch, R: rOne})
	b.Emit(masm.I{ALU: microcode.ALUB, B: microcode.BSelMD, LC: microcode.LCLoadT})
	b.Emit(masm.I{B: microcode.BSelRM, R: rL, FF: microcode.FFPutQ})
	b.Emit(masm.I{A: microcode.ASelFetch, R: rAV, FF: microcode.FFMemBaseBase + MBSys})
	b.Emit(masm.I{A: microcode.ASelStore, R: rL, B: microcode.BSelMD})
	b.Emit(masm.I{A: microcode.ASelStore, R: rAV, B: microcode.BSelQ})
	b.Emit(masm.I{A: microcode.ASelRM, R: rTmp, ALU: microcode.ALUA,
		LC: microcode.LCLoadRM, FF: microcode.FFRMDestBase + rL})
	b.Emit(masm.I{FF: microcode.FFMemBaseBase + MBLocal})
	b.Emit(masm.I{B: microcode.BSelRM, R: rL, FF: microcode.FFPutBaseLo})
	b.Emit(masm.I{B: microcode.BSelT, FF: microcode.FFIFUReset})
	b.Emit(masm.I{Flow: jump})

	// ADDI: tag-checked SmallInteger add: (2x+1)+(2y+1)-1 = 2(x+y)+1.
	// A zero (tag bit clear) AND result means a pointer operand: trap.
	b.EmitAt("s.addi", masm.I{ALU: microcode.ALUA, LC: microcode.LCLoadT, Block: true, R: pop})
	b.Emit(masm.I{A: microcode.ASelT, Const: 1, HasConst: true, ALU: microcode.ALUAandB,
		Flow: masm.Branch(microcode.CondALUZero, "s.addi.t1", "s.addi.bad1")})
	b.EmitAt("s.addi.bad1", masm.I{Flow: masm.Goto("s.trap")})
	b.EmitAt("s.addi.t1", masm.I{Const: 1, HasConst: true, B: microcode.BSelRM,
		ALU: microcode.ALUAandB, Block: true, R: top,
		Flow: masm.Branch(microcode.CondALUZero, "s.addi.t2", "s.addi.bad2")})
	b.EmitAt("s.addi.bad2", masm.I{Flow: masm.Goto("s.trap")})
	b.EmitAt("s.addi.t2", masm.I{A: microcode.ASelT, ALU: microcode.ALUAminus1, LC: microcode.LCLoadT})
	b.Emit(masm.I{B: microcode.BSelT, ALU: microcode.ALUAplusB, LC: microcode.LCLoadRM,
		Block: true, R: top, Flow: jump})
}

// emitSmalltalkSend writes SEND selector,nargs.
func emitSmalltalkSend(b *masm.Builder, jump masm.Flow) {
	// Setup: rVal = selector, Q = nargs.
	b.EmitAt("s.send", masm.I{A: microcode.ASelIFUData, ALU: microcode.ALUA,
		LC: microcode.LCLoadRM, R: rVal})
	b.Emit(masm.I{A: microcode.ASelIFUData, ALU: microcode.ALUA, LC: microcode.LCLoadT})
	b.Emit(masm.I{B: microcode.BSelT, FF: microcode.FFPutQ})
	// Receiver sits nargs below the stack top: temporarily rewind STACKPTR
	// (a stack-mode read/write always addresses the top, so deep access
	// goes through the pointer, §6.3.3).
	b.Emit(masm.I{FF: microcode.FFGetStackPtr, LC: microcode.LCLoadRM, R: rTmp})
	b.Emit(masm.I{A: microcode.ASelRM, R: rTmp, B: microcode.BSelQ,
		ALU: microcode.ALUAminusB, LC: microcode.LCLoadT})
	b.Emit(masm.I{B: microcode.BSelT, FF: microcode.FFPutStackPtr})
	b.Emit(masm.I{ALU: microcode.ALUA, Block: true, R: top, LC: microcode.LCLoadT}) // T = receiver
	b.Emit(masm.I{B: microcode.BSelRM, R: rTmp, FF: microcode.FFPutStackPtr})
	b.Emit(masm.I{A: microcode.ASelT, ALU: microcode.ALUA,
		LC: microcode.LCLoadRM, R: rVal2}) // rVal2 = receiver oop
	// Class lookup: a zero AND result (tag bit clear) is a pointer → obj[0];
	// otherwise the receiver is a tagged SmallInteger.
	b.Emit(masm.I{A: microcode.ASelRM, R: rVal2, Const: 1, HasConst: true,
		ALU:  microcode.ALUAandB,
		Flow: masm.Branch(microcode.CondALUZero, "s.send.int", "s.send.ptr")})
	b.EmitAt("s.send.ptr", masm.I{A: microcode.ASelFetch, R: rVal2,
		FF: microcode.FFMemBaseBase + MBSys})
	b.Emit(masm.I{ALU: microcode.ALUB, B: microcode.BSelMD, LC: microcode.LCLoadRM, R: rTmp,
		Flow: masm.Goto("s.send.dict")})
	b.EmitAt("s.send.int", masm.I{Const: SIClassSlot, HasConst: true, ALU: microcode.ALUB,
		LC: microcode.LCLoadRM, R: rTmp})
	b.Emit(masm.I{A: microcode.ASelFetch, R: rTmp, FF: microcode.FFMemBaseBase + MBSys})
	b.Emit(masm.I{ALU: microcode.ALUB, B: microcode.BSelMD, LC: microcode.LCLoadRM, R: rTmp})
	// Method dictionary: class[0] = superclass (0 = none), class[1] = dict
	// address, class[2] = entry count. rGP remembers the class being
	// searched so a miss can continue up the superclass chain.
	b.EmitAt("s.send.dict", masm.I{A: microcode.ASelRM, R: rTmp, ALU: microcode.ALUA,
		LC: microcode.LCLoadRM, FF: microcode.FFRMDestBase + rGP})
	b.Emit(masm.I{A: microcode.ASelRM, R: rTmp, ALU: microcode.ALUAplus1,
		LC: microcode.LCLoadRM})
	b.Emit(masm.I{A: microcode.ASelFetch, R: rTmp, ALU: microcode.ALUAplus1,
		LC: microcode.LCLoadRM})
	b.Emit(masm.I{ALU: microcode.ALUB, B: microcode.BSelMD, LC: microcode.LCLoadRM, R: rNew})
	b.Emit(masm.I{A: microcode.ASelFetch, R: rTmp})
	b.Emit(masm.I{B: microcode.BSelMD, FF: microcode.FFPutCount})
	// Linear probe; a miss walks to the superclass, and "message not
	// understood" traps only at the top of the chain.
	b.EmitAt("s.send.head", masm.I{Flow: masm.Branch(microcode.CondCountNZ, "s.send.fail", "s.send.probe")})
	b.EmitAt("s.send.fail", masm.I{A: microcode.ASelFetch, R: rGP})
	b.Emit(masm.I{ALU: microcode.ALUB, B: microcode.BSelMD, LC: microcode.LCLoadRM, R: rTmp,
		Flow: masm.Branch(microcode.CondALUZero, "s.send.super", "s.send.mnu")})
	b.EmitAt("s.send.mnu", masm.I{Flow: masm.Goto("s.trap")})
	b.EmitAt("s.send.super", masm.I{Flow: masm.Goto("s.send.dict")})
	b.EmitAt("s.send.probe", masm.I{A: microcode.ASelFetch, R: rNew,
		ALU: microcode.ALUAplus1, LC: microcode.LCLoadRM})
	b.Emit(masm.I{A: microcode.ASelMD, B: microcode.BSelRM, R: rVal,
		ALU:  microcode.ALUAminusB,
		Flow: masm.Branch(microcode.CondALUZero, "s.send.next", "s.send.hit")})
	b.EmitAt("s.send.next", masm.I{A: microcode.ASelRM, R: rNew, ALU: microcode.ALUAplus1,
		LC: microcode.LCLoadRM, Flow: masm.Goto("s.send.head")})
	b.EmitAt("s.send.hit", masm.I{A: microcode.ASelFetch, R: rNew})
	b.Emit(masm.I{ALU: microcode.ALUB, B: microcode.BSelMD, LC: microcode.LCLoadRM, R: rHdr})
	// Activate: allocate a frame (zero head = pool exhausted: trap), save
	// L/retPC/receiver, move nargs args.
	b.Emit(masm.I{A: microcode.ASelFetch, R: rAV})
	b.Emit(masm.I{ALU: microcode.ALUB, B: microcode.BSelMD, LC: microcode.LCLoadRM, R: rFB,
		Flow: masm.Branch(microcode.CondALUZero, "s.send.fok", "s.send.exh")})
	b.EmitAt("s.send.exh", masm.I{Flow: masm.Goto("s.trap")})
	b.EmitAt("s.send.fok", masm.I{ALU: microcode.ALUB, B: microcode.BSelMD, LC: microcode.LCLoadRM, R: rNew})
	b.Emit(masm.I{A: microcode.ASelFetch, R: rFB})
	b.Emit(masm.I{A: microcode.ASelStore, R: rAV, B: microcode.BSelMD})
	b.Emit(masm.I{A: microcode.ASelRM, R: rL, ALU: microcode.ALUA, LC: microcode.LCLoadT})
	b.Emit(masm.I{A: microcode.ASelStore, R: rNew, B: microcode.BSelT,
		ALU: microcode.ALUAplus1, LC: microcode.LCLoadRM})
	b.Emit(masm.I{FF: microcode.FFGetMacroPC, LC: microcode.LCLoadT})
	b.Emit(masm.I{A: microcode.ASelStore, R: rNew, B: microcode.BSelT,
		ALU: microcode.ALUAplus1, LC: microcode.LCLoadRM})
	b.Emit(masm.I{A: microcode.ASelRM, R: rVal2, ALU: microcode.ALUA, LC: microcode.LCLoadT})
	b.Emit(masm.I{A: microcode.ASelStore, R: rNew, B: microcode.BSelT,
		ALU: microcode.ALUAplus1, LC: microcode.LCLoadRM})
	// Move the arguments (COUNT was consumed by the probe loop; reload from Q).
	b.Emit(masm.I{B: microcode.BSelQ, FF: microcode.FFPutCount})
	b.EmitAt("s.send.ahead", masm.I{Flow: masm.Branch(microcode.CondCountNZ, "s.send.fin", "s.send.arg")})
	b.EmitAt("s.send.arg", masm.I{ALU: microcode.ALUA, LC: microcode.LCLoadT, Block: true, R: pop})
	b.Emit(masm.I{A: microcode.ASelStore, R: rNew, B: microcode.BSelT,
		ALU: microcode.ALUAplus1, LC: microcode.LCLoadRM, Flow: masm.Goto("s.send.ahead")})
	// Drop the receiver from the stack, rebase, fetch the entry PC, go.
	b.EmitAt("s.send.fin", masm.I{Block: true, R: pop})
	b.Emit(masm.I{A: microcode.ASelRM, R: rFB, ALU: microcode.ALUA,
		LC: microcode.LCLoadRM, FF: microcode.FFRMDestBase + rL})
	b.Emit(masm.I{FF: microcode.FFMemBaseBase + MBLocal})
	b.Emit(masm.I{B: microcode.BSelRM, R: rL, FF: microcode.FFPutBaseLo})
	b.Emit(masm.I{A: microcode.ASelFetch, R: rHdr, FF: microcode.FFMemBaseBase + MBGlobal})
	b.Emit(masm.I{ALU: microcode.ALUB, B: microcode.BSelMD, LC: microcode.LCLoadT,
		FF: microcode.FFMemBaseBase + MBLocal})
	b.Emit(masm.I{B: microcode.BSelT, FF: microcode.FFIFUReset})
	b.Emit(masm.I{Flow: jump})
}
