package emulator

import "fmt"

// InstallError reports a failure while assembling, combining, or installing
// an emulator. It wraps the underlying cause so callers can classify
// failures with errors.As without parsing message strings.
type InstallError struct {
	Emulator string // emulator name ("mesa", "lisp", ...); "" when not specific
	Stage    string // "assemble", "splice", "decode-table", "macrocode"
	Err      error
}

// Error implements the error interface, naming the emulator and stage.
func (e *InstallError) Error() string {
	if e.Emulator == "" {
		return fmt.Sprintf("emulator: %s: %v", e.Stage, e.Err)
	}
	return fmt.Sprintf("emulator %s: %s: %v", e.Emulator, e.Stage, e.Err)
}

// Unwrap exposes the underlying cause for errors.Is / errors.As.
func (e *InstallError) Unwrap() error { return e.Err }
