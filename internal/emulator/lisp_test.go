package emulator

import (
	"testing"

	"dorado/internal/core"
)

func newLispMachine(t *testing.T, build func(a *Asm)) *core.Machine {
	t.Helper()
	p, err := BuildLisp()
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.New(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	a := NewAsm(p)
	build(a)
	code, err := a.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	LoadCode(m, code)
	if err := p.InstallOn(m); err != nil {
		t.Fatal(err)
	}
	return m
}

// lispStack returns the memory evaluation stack as (tag, value) pairs.
func lispStack(t *testing.T, m *core.Machine) [][2]uint16 {
	t.Helper()
	sp := uint32(m.RM(12)) // rSP
	var out [][2]uint16
	for a := uint32(VAStack); a+1 < sp+1 && a < sp; a += 2 {
		out = append(out, [2]uint16{m.Mem().Peek(a), m.Mem().Peek(a + 1)})
	}
	return out
}

func lispRun(t *testing.T, m *core.Machine, max uint64) [][2]uint16 {
	t.Helper()
	if !m.Run(max) {
		t.Fatalf("did not halt (task %d pc %v)", m.CurTask(), m.CurPC())
	}
	return lispStack(t, m)
}

func TestLispPushArith(t *testing.T) {
	m := newLispMachine(t, func(a *Asm) {
		a.OpW("PUSHK", 30).OpW("PUSHK", 12).Op("ADDF") // 42
		a.OpW("PUSHK", 10).Op("SUBF")                  // 32
		a.Op("HALT")
	})
	st := lispRun(t, m, 100000)
	if len(st) != 1 || st[0] != [2]uint16{TagFixnum, 32} {
		t.Fatalf("stack = %v, want [[1 32]]", st)
	}
}

func TestLispTypeErrorTraps(t *testing.T) {
	m := newLispMachine(t, func(a *Asm) {
		a.Op("PUSHNIL").OpW("PUSHK", 1).Op("ADDF") // NIL + 1: type error
		a.Op("HALT")
	})
	if !m.Run(100000) {
		t.Fatal("did not halt")
	}
	// Halted at the trap, not at the program's HALT: the stack still holds
	// operands (nothing was pushed back).
	st := lispStack(t, m)
	if len(st) != 0 {
		t.Fatalf("trap should fire before the result push; stack = %v", st)
	}
}

func TestLispLocals(t *testing.T) {
	m := newLispMachine(t, func(a *Asm) {
		a.OpW("PUSHK", 123).OpB("POPL", 4) // local item at frame words 4,5
		a.OpB("PUSHL", 4).OpB("PUSHL", 4).Op("ADDF")
		a.Op("HALT")
	})
	st := lispRun(t, m, 100000)
	if len(st) != 1 || st[0] != [2]uint16{TagFixnum, 246} {
		t.Fatalf("stack = %v, want [[1 246]]", st)
	}
	if m.Mem().Peek(VAFrames+4) != TagFixnum || m.Mem().Peek(VAFrames+5) != 123 {
		t.Errorf("local item = [%d %d]", m.Mem().Peek(VAFrames+4), m.Mem().Peek(VAFrames+5))
	}
}

func TestLispConsCarCdr(t *testing.T) {
	m := newLispMachine(t, func(a *Asm) {
		a.OpW("PUSHK", 7).OpW("PUSHK", 9).Op("CONS") // (7 . 9)
		a.Op("CDR")
		a.Op("HALT")
	})
	st := lispRun(t, m, 100000)
	if len(st) != 1 || st[0] != [2]uint16{TagFixnum, 9} {
		t.Fatalf("cdr = %v, want [[1 9]]", st)
	}

	m2 := newLispMachine(t, func(a *Asm) {
		a.OpW("PUSHK", 7).Op("PUSHNIL").Op("CONS") // (7)
		a.Op("CAR")
		a.Op("HALT")
	})
	st2 := lispRun(t, m2, 100000)
	if len(st2) != 1 || st2[0] != [2]uint16{TagFixnum, 7} {
		t.Fatalf("car = %v, want [[1 7]]", st2)
	}
}

func TestLispCarOfFixnumTraps(t *testing.T) {
	m := newLispMachine(t, func(a *Asm) {
		a.OpW("PUSHK", 7).Op("CAR")
		a.Op("HALT")
	})
	if !m.Run(100000) {
		t.Fatal("did not halt")
	}
	if len(lispStack(t, m)) != 0 {
		t.Fatal("CAR of a fixnum must trap before pushing")
	}
}

func TestLispJumps(t *testing.T) {
	m := newLispMachine(t, func(a *Asm) {
		a.Op("PUSHNIL").OpL("JNIL", "nil1")
		a.OpW("PUSHK", 99)
		a.Op("HALT")
		a.Label("nil1")
		a.OpW("PUSHK", 5).OpL("JNIL", "bad") // fixnum: not taken
		a.OpW("PUSHK", 42)
		a.OpL("JMP", "end")
		a.Label("bad")
		a.OpW("PUSHK", 98)
		a.Label("end")
		a.Op("HALT")
	})
	st := lispRun(t, m, 100000)
	if len(st) != 1 || st[0] != [2]uint16{TagFixnum, 42} {
		t.Fatalf("stack = %v, want [[1 42]]", st)
	}
}

func TestLispCallBindsAndUnbinds(t *testing.T) {
	// f(x, y) = x - y using shallow-bound parameter symbols.
	const symX, symY = VAHeap + 0x100, VAHeap + 0x110
	m := newLispMachine(t, func(a *Asm) {
		a.OpW("PUSHK", 50).OpW("PUSHK", 8).OpW("CALLF", 200) // f(50, 8)
		a.Op("HALT")
		a.Label("f")
		// Body reads the args from frame locals: item slots 4,5 (=y, popped
		// first) and 6,7 (=x).
		a.OpB("PUSHL", 6).OpB("PUSHL", 4).Op("SUBF")
		a.Op("RETF")
	})
	// Entry: PUSHK(3)+PUSHK(3)+CALLF(3)+HALT(1) = 10.
	DefineLispFunc(m, 200, 10, []uint16{symX, symY})
	// Pre-existing (global) bindings of x and y.
	m.Mem().Poke(symX, TagFixnum)
	m.Mem().Poke(symX+1, 1111)
	m.Mem().Poke(symY, TagFixnum)
	m.Mem().Poke(symY+1, 2222)
	st := lispRun(t, m, 1000000)
	if len(st) != 1 || st[0] != [2]uint16{TagFixnum, 42} {
		t.Fatalf("f(50,8) = %v, want [[1 42]]", st)
	}
	// Old bindings restored after RETF.
	if m.Mem().Peek(symX+1) != 1111 || m.Mem().Peek(symY+1) != 2222 {
		t.Errorf("bindings not restored: x=%d y=%d", m.Mem().Peek(symX+1), m.Mem().Peek(symY+1))
	}
	// Binding stack rewound.
	if m.RM(15) != VABind {
		t.Errorf("binding stack pointer = %#x, want %#x", m.RM(15), VABind)
	}
}

func TestLispBindingVisibleDuringCall(t *testing.T) {
	// During the call, the parameter symbol's value cell holds the argument
	// (shallow binding); the callee reads it via an absolute CAR-style
	// probe... simpler: a nested call's body pushes the symbol's cell via
	// PUSHL of its own frame copy, already covered. Here: verify the cell
	// contents mid-call by trapping inside the body.
	const symX = VAHeap + 0x100
	m := newLispMachine(t, func(a *Asm) {
		a.OpW("PUSHK", 77).OpW("CALLF", 200)
		a.Op("HALT")
		a.Label("f")
		a.Op("HALT") // stop inside the call
	})
	DefineLispFunc(m, 200, 7, []uint16{symX})
	if !m.Run(1000000) {
		t.Fatal("did not halt")
	}
	if m.Mem().Peek(symX) != TagFixnum || m.Mem().Peek(symX+1) != 77 {
		t.Errorf("shallow binding not set: [%d %d]", m.Mem().Peek(symX), m.Mem().Peek(symX+1))
	}
	// One binding record on the stack.
	if m.RM(15) != VABind+2 {
		t.Errorf("binding sp = %#x, want %#x", m.RM(15), VABind+2)
	}
}
