package emulator

import (
	"dorado/internal/masm"
	"dorado/internal/microcode"
)

// Lisp item tags. An item is two 16-bit words, [tag, value] — "Lisp deals
// with 32 bit items" (§7).
const (
	TagNil    = 0
	TagFixnum = 1
	TagCons   = 2
	TagSymbol = 3
)

// Lisp opcode bytes. The emulator reconstructs the Interlisp byte-code
// interpreter's cost structure (§7): 32-bit tagged items, the evaluation
// stack kept *in memory* ("keeps its stack in memory, so two loads and two
// stores are done in a basic data transfer operation"), runtime type
// checking on arithmetic and list primitives, and a function call that
// allocates a frame and shallow-binds every argument's symbol.
const (
	LispPUSHK   = 0x01 // PUSHK w:  push fixnum literal       (3 µinst)
	LispPUSHNIL = 0x02 // PUSHNIL:  push NIL                  (2 µinst)
	LispPUSHL   = 0x03 // PUSHL o:  push local item at word o (6 µinst)
	LispPOPL    = 0x04 // POPL o:   pop item into local       (9 µinst)
	LispADDF    = 0x05 // ADDF:     fixnum add, type-checked  (14 µinst)
	LispSUBF    = 0x06 // SUBF:     fixnum subtract           (14 µinst)
	LispCAR     = 0x07 // CAR:      type-checked              (10 µinst)
	LispCDR     = 0x08 // CDR:      type-checked              (10 µinst)
	LispCONS    = 0x09 // CONS:     allocate + fill a cell    (25 µinst)
	LispJMP     = 0x0A // JMP w                               (3 µinst + restart)
	LispJNIL    = 0x0B // JNIL w:   pop; jump if NIL          (4 or 6 µinst)
	LispJZF     = 0x0E // JZF w:    pop; jump if value == 0   (5 or 7 µinst)
	LispCALLF   = 0x0C // CALLF w:  call, binding arguments   (≈24 + 17/arg)
	LispRETF    = 0x0D // RETF:     return, unbinding         (≈24 + 6/arg)
	LispHALT    = 0x1F
)

// BuildLisp assembles the Lisp emulator.
func BuildLisp() (*Program, error) {
	b := masm.NewBuilder()
	emitBoot(b)
	emitLispHandlers(b)
	p, err := b.Assemble()
	if err != nil {
		return nil, err
	}
	return finishLisp(p, "")
}

// finishLisp builds the decode table from the placed (or relocated) image.
func finishLisp(p *masm.Program, prefix string) (*Program, error) {
	table, ops, err := buildTable(p, prefix, []opdef{
		{LispPUSHK, "PUSHK", "l.pushk", 2, true},
		{LispPUSHNIL, "PUSHNIL", "l.pushnil", 0, false},
		{LispPUSHL, "PUSHL", "l.pushl", 1, false},
		{LispPOPL, "POPL", "l.popl", 1, false},
		{LispADDF, "ADDF", "l.addf", 0, false},
		{LispSUBF, "SUBF", "l.subf", 0, false},
		{LispCAR, "CAR", "l.car", 0, false},
		{LispCDR, "CDR", "l.cdr", 0, false},
		{LispCONS, "CONS", "l.cons", 0, false},
		{LispJMP, "JMP", "l.jmp", 2, true},
		{LispJNIL, "JNIL", "l.jnil", 2, true},
		{LispJZF, "JZF", "l.jzf", 2, true},
		{LispCALLF, "CALLF", "l.callf", 2, true},
		{LispRETF, "RETF", "l.retf", 0, false},
		{LispHALT, "HALT", "op.halt", 0, false},
	})
	if err != nil {
		return nil, err
	}
	return &Program{
		Name: "lisp", Micro: p, Table: table,
		Boot: p.MustEntry(prefix + "boot"), Opcodes: ops, RestMB: MBSys,
	}, nil
}

// emitLispHandlers writes the Lisp microcode. Conventions: MEMBASE rests at
// MBSys (the memory stack at rSP, the heap, the binding stack at rGP, and
// the frame heap are all absolute); frame-local reads ride an explicit
// MBLocal on the fetch. T and Q are scratch. rSP points at the next free
// stack word; an item pushes as tag then value.
func emitLispHandlers(b *masm.Builder) {
	jump := masm.IFUJump()
	spUp := masm.I{A: microcode.ASelStore, R: rSP, ALU: microcode.ALUAplus1, LC: microcode.LCLoadRM}
	spDown := masm.I{A: microcode.ASelRM, R: rSP, ALU: microcode.ALUAminus1, LC: microcode.LCLoadRM}

	// Type-error trap (stands in for raising a Lisp error).
	b.EmitAt("l.trap", masm.I{FF: microcode.FFHalt, Flow: masm.Self()})

	// PUSHK w: push [FIXNUM, w].
	b.EmitAt("l.pushk", masm.I{A: microcode.ASelIFUData, ALU: microcode.ALUA, LC: microcode.LCLoadT})
	tagPush := spUp
	tagPush.Const, tagPush.HasConst = TagFixnum, true
	b.Emit(tagPush)
	valPush := spUp
	valPush.B = microcode.BSelT
	valPush.Flow = jump
	b.Emit(valPush)

	// PUSHNIL: push [NIL, 0].
	nilPush := spUp
	nilPush.Const, nilPush.HasConst = TagNil, true
	b.EmitAt("l.pushnil", nilPush)
	nilPush2 := nilPush
	nilPush2.Flow = jump
	b.Emit(nilPush2)

	// PUSHL o: push the local item at frame word offset o.
	b.EmitAt("l.pushl", masm.I{A: microcode.ASelIFUData, ALU: microcode.ALUA,
		LC: microcode.LCLoadRM, R: rTmp})
	b.Emit(masm.I{A: microcode.ASelFetch, R: rTmp, ALU: microcode.ALUAplus1,
		LC: microcode.LCLoadRM, FF: microcode.FFMemBaseBase + MBLocal})
	b.Emit(masm.I{B: microcode.BSelMD, FF: microcode.FFPutQ})
	b.Emit(masm.I{A: microcode.ASelFetch, R: rTmp, FF: microcode.FFMemBaseBase + MBLocal})
	qPush := spUp
	qPush.B = microcode.BSelQ
	qPush.FF = microcode.FFMemBaseBase + MBSys // stack pushes are absolute
	b.Emit(qPush)
	mdPush := spUp
	mdPush.B = microcode.BSelMD
	mdPush.Flow = jump
	b.Emit(mdPush)

	// POPL o: pop the top item into the local at word offset o.
	b.EmitAt("l.popl", masm.I{A: microcode.ASelIFUData, ALU: microcode.ALUA,
		LC: microcode.LCLoadRM, R: rTmp})
	b.Emit(masm.I{A: microcode.ASelRM, R: rTmp, ALU: microcode.ALUAplus1,
		LC: microcode.LCLoadRM, FF: microcode.FFRMDestBase + rTmp2})
	b.Emit(spDown)
	b.Emit(masm.I{A: microcode.ASelFetch, R: rSP}) // value
	b.Emit(masm.I{A: microcode.ASelStore, R: rTmp2, B: microcode.BSelMD,
		FF: microcode.FFMemBaseBase + MBLocal})
	down2 := spDown
	down2.FF = microcode.FFMemBaseBase + MBSys
	b.Emit(down2)
	b.Emit(masm.I{A: microcode.ASelFetch, R: rSP}) // tag
	b.Emit(masm.I{A: microcode.ASelStore, R: rTmp, B: microcode.BSelMD,
		FF: microcode.FFMemBaseBase + MBLocal})
	b.Emit(masm.I{FF: microcode.FFMemBaseBase + MBSys, Flow: jump})

	// Fixnum arithmetic with runtime checks ("Lisp does runtime checking
	// of parameters", §7).
	arith := func(label string, fn microcode.ALUFn) {
		b.EmitAt(label, spDown)
		b.Emit(masm.I{A: microcode.ASelFetch, R: rSP}) // val2
		b.Emit(masm.I{ALU: microcode.ALUB, B: microcode.BSelMD, LC: microcode.LCLoadT})
		b.Emit(spDown)
		b.Emit(masm.I{A: microcode.ASelFetch, R: rSP}) // tag2
		b.Emit(masm.I{A: microcode.ASelMD, Const: TagFixnum, HasConst: true,
			ALU:  microcode.ALUAminusB,
			Flow: masm.Branch(microcode.CondALUZero, label+".trap1", label+".ok1")})
		b.EmitAt(label+".trap1", masm.I{Flow: masm.Goto("l.trap")})
		b.EmitAt(label+".ok1", spDown)
		b.Emit(masm.I{A: microcode.ASelFetch, R: rSP}) // val1
		b.Emit(masm.I{A: microcode.ASelMD, B: microcode.BSelT, ALU: fn, LC: microcode.LCLoadT})
		b.Emit(spDown)
		b.Emit(masm.I{A: microcode.ASelFetch, R: rSP}) // tag1
		b.Emit(masm.I{A: microcode.ASelMD, Const: TagFixnum, HasConst: true,
			ALU:  microcode.ALUAminusB,
			Flow: masm.Branch(microcode.CondALUZero, label+".trap2", label+".ok2")})
		b.EmitAt(label+".trap2", masm.I{Flow: masm.Goto("l.trap")})
		ok2 := spUp
		ok2.Const, ok2.HasConst = TagFixnum, true
		b.EmitAt(label+".ok2", ok2)
		fin := spUp
		fin.B = microcode.BSelT
		fin.Flow = jump
		b.Emit(fin)
	}
	// val1 fn val2: for SUB we want first-pushed minus second-pushed:
	// A=val1 (fetched second), B=T=val2.
	arith("l.addf", microcode.ALUAplusB)
	arith("l.subf", microcode.ALUAminusB)

	// CAR/CDR: pop a CONS item, push the selected half of the cell.
	// A cell is four absolute words [car tag, car val, cdr tag, cdr val].
	carcdr := func(label string, offset uint16) {
		b.EmitAt(label, spDown)
		b.Emit(masm.I{A: microcode.ASelFetch, R: rSP}) // value = cell addr
		if offset == 0 {
			b.Emit(masm.I{ALU: microcode.ALUB, B: microcode.BSelMD, LC: microcode.LCLoadRM, R: rTmp})
		} else {
			b.Emit(masm.I{A: microcode.ASelMD, Const: offset, HasConst: true,
				ALU: microcode.ALUAplusB, LC: microcode.LCLoadRM, R: rTmp})
		}
		b.Emit(spDown)
		b.Emit(masm.I{A: microcode.ASelFetch, R: rSP}) // tag
		b.Emit(masm.I{A: microcode.ASelMD, Const: TagCons, HasConst: true,
			ALU:  microcode.ALUAminusB,
			Flow: masm.Branch(microcode.CondALUZero, label+".trap", label+".ok")})
		b.EmitAt(label+".trap", masm.I{Flow: masm.Goto("l.trap")})
		b.EmitAt(label+".ok", masm.I{A: microcode.ASelFetch, R: rTmp,
			ALU: microcode.ALUAplus1, LC: microcode.LCLoadRM})
		mdp := spUp
		mdp.B = microcode.BSelMD
		b.Emit(mdp)
		b.Emit(masm.I{A: microcode.ASelFetch, R: rTmp})
		mdp2 := spUp
		mdp2.B = microcode.BSelMD
		mdp2.Flow = jump
		b.Emit(mdp2)
	}
	carcdr("l.car", 0)
	carcdr("l.cdr", 2)

	// CONS: pop cdr then car, fill a fresh cell from the heap pointer,
	// push the CONS item.
	b.EmitAt("l.cons", masm.I{Const: HPHead, HasConst: true, ALU: microcode.ALUB,
		LC: microcode.LCLoadRM, R: rVal})
	b.Emit(masm.I{A: microcode.ASelFetch, R: rVal})
	b.Emit(masm.I{ALU: microcode.ALUB, B: microcode.BSelMD, LC: microcode.LCLoadRM, R: rTmp})
	b.Emit(masm.I{A: microcode.ASelMD, Const: 4, HasConst: true,
		ALU: microcode.ALUAplusB, LC: microcode.LCLoadRM, R: rTmp2})
	b.Emit(masm.I{B: microcode.BSelRM, R: rTmp2, FF: microcode.FFPutQ})
	b.Emit(masm.I{A: microcode.ASelStore, R: rVal, B: microcode.BSelQ}) // heap ptr += 4
	// cdr value → cell+3, cdr tag → cell+2, car value → cell+1, car tag → cell+0.
	b.Emit(masm.I{A: microcode.ASelRM, R: rTmp2, ALU: microcode.ALUAminus1,
		LC: microcode.LCLoadRM, FF: microcode.FFRMDestBase + rVal2})
	for i := 0; i < 4; i++ {
		b.Emit(spDown)
		b.Emit(masm.I{A: microcode.ASelFetch, R: rSP})
		st := masm.I{A: microcode.ASelStore, R: rVal2, B: microcode.BSelMD}
		if i < 3 {
			st.ALU = microcode.ALUAminus1
			st.LC = microcode.LCLoadRM
		}
		b.Emit(st)
	}
	consTag := spUp
	consTag.Const, consTag.HasConst = TagCons, true
	b.Emit(consTag)
	b.Emit(masm.I{B: microcode.BSelRM, R: rTmp, FF: microcode.FFPutQ})
	consVal := spUp
	consVal.B = microcode.BSelQ
	consVal.Flow = jump
	b.Emit(consVal)

	// JMP w.
	b.EmitAt("l.jmp", masm.I{A: microcode.ASelIFUData, ALU: microcode.ALUA, LC: microcode.LCLoadT})
	b.Emit(masm.I{B: microcode.BSelT, FF: microcode.FFIFUReset})
	b.Emit(masm.I{Flow: jump})

	// JNIL w: pop an item; jump when its tag is NIL.
	b.EmitAt("l.jnil", spDown)
	b.Emit(spDown)
	b.Emit(masm.I{A: microcode.ASelFetch, R: rSP}) // tag
	b.Emit(masm.I{A: microcode.ASelMD, ALU: microcode.ALUA,
		Flow: masm.Branch(microcode.CondALUZero, "l.jnil.no", "l.jnil.yes")})
	b.EmitAt("l.jnil.no", masm.I{Flow: jump})
	b.EmitAt("l.jnil.yes", masm.I{A: microcode.ASelIFUData, ALU: microcode.ALUA, LC: microcode.LCLoadT})
	b.Emit(masm.I{B: microcode.BSelT, FF: microcode.FFIFUReset})
	b.Emit(masm.I{Flow: jump})

	// JZF w: pop an item; jump when its value word is zero (the numeric
	// test the Lisp compiler builds conditionals from).
	b.EmitAt("l.jzf", spDown)
	b.Emit(spDown)
	b.Emit(masm.I{A: microcode.ASelRM, R: rSP, ALU: microcode.ALUAplus1,
		LC: microcode.LCLoadRM, FF: microcode.FFRMDestBase + rTmp})
	b.Emit(masm.I{A: microcode.ASelFetch, R: rTmp}) // the value word
	b.Emit(masm.I{A: microcode.ASelMD, ALU: microcode.ALUA,
		Flow: masm.Branch(microcode.CondALUZero, "l.jzf.no", "l.jzf.yes")})
	b.EmitAt("l.jzf.no", masm.I{Flow: jump})
	b.EmitAt("l.jzf.yes", masm.I{A: microcode.ASelIFUData, ALU: microcode.ALUA, LC: microcode.LCLoadT})
	b.Emit(masm.I{B: microcode.BSelT, FF: microcode.FFIFUReset})
	b.Emit(masm.I{Flow: jump})

	emitLispCall(b, jump)
	emitLispReturn(b, jump)
}

// emitLispCall writes CALLF w: w is the word address (in MBGlobal) of a
// function header {entry byte PC, nargs, param symbol addresses...}.
// The call allocates a frame, saves the caller's context, then for each
// argument (popped from the memory stack) saves the parameter symbol's old
// value cell on the binding stack, sets the new shallow binding, and copies
// the argument into the frame. Frame: [0]=L, [1]=retPC, [2]=param list
// address, [3]=nargs, [4..]=argument items in pop order.
func emitLispCall(b *masm.Builder, jump masm.Flow) {
	spDown := masm.I{A: microcode.ASelRM, R: rSP, ALU: microcode.ALUAminus1, LC: microcode.LCLoadRM}
	b.EmitAt("l.callf", masm.I{A: microcode.ASelIFUData, ALU: microcode.ALUA,
		LC: microcode.LCLoadRM, R: rHdr})
	b.Emit(masm.I{A: microcode.ASelFetch, R: rHdr, ALU: microcode.ALUAplus1,
		LC: microcode.LCLoadRM, FF: microcode.FFMemBaseBase + MBGlobal})
	b.Emit(masm.I{ALU: microcode.ALUB, B: microcode.BSelMD, LC: microcode.LCLoadRM, R: rPC})
	b.Emit(masm.I{A: microcode.ASelFetch, R: rHdr, ALU: microcode.ALUAplus1,
		LC: microcode.LCLoadRM, FF: microcode.FFMemBaseBase + MBGlobal})
	b.Emit(masm.I{B: microcode.BSelMD, FF: microcode.FFPutCount})
	// Allocate a frame (zero free-list head = exhausted: trap).
	b.Emit(masm.I{A: microcode.ASelFetch, R: rAV, FF: microcode.FFMemBaseBase + MBSys})
	b.Emit(masm.I{ALU: microcode.ALUB, B: microcode.BSelMD, LC: microcode.LCLoadRM, R: rFB,
		Flow: masm.Branch(microcode.CondALUZero, "l.callf.ok", "l.callf.exh")})
	b.EmitAt("l.callf.exh", masm.I{Flow: masm.Goto("l.trap")})
	b.EmitAt("l.callf.ok", masm.I{ALU: microcode.ALUB, B: microcode.BSelMD, LC: microcode.LCLoadRM, R: rNew})
	b.Emit(masm.I{A: microcode.ASelFetch, R: rFB})
	b.Emit(masm.I{A: microcode.ASelStore, R: rAV, B: microcode.BSelMD})
	// Save caller context.
	b.Emit(masm.I{A: microcode.ASelRM, R: rL, ALU: microcode.ALUA, LC: microcode.LCLoadT})
	b.Emit(masm.I{A: microcode.ASelStore, R: rNew, B: microcode.BSelT,
		ALU: microcode.ALUAplus1, LC: microcode.LCLoadRM})
	b.Emit(masm.I{FF: microcode.FFGetMacroPC, LC: microcode.LCLoadT})
	b.Emit(masm.I{A: microcode.ASelStore, R: rNew, B: microcode.BSelT,
		ALU: microcode.ALUAplus1, LC: microcode.LCLoadRM})
	b.Emit(masm.I{B: microcode.BSelRM, R: rHdr, FF: microcode.FFPutQ})
	b.Emit(masm.I{A: microcode.ASelStore, R: rNew, B: microcode.BSelQ,
		ALU: microcode.ALUAplus1, LC: microcode.LCLoadRM})
	b.Emit(masm.I{FF: microcode.FFGetCount, LC: microcode.LCLoadT})
	b.Emit(masm.I{A: microcode.ASelStore, R: rNew, B: microcode.BSelT,
		ALU: microcode.ALUAplus1, LC: microcode.LCLoadRM})
	// Argument binding loop.
	b.EmitAt("l.callf.head", masm.I{Flow: masm.Branch(microcode.CondCountNZ, "l.callf.fin", "l.callf.arg")})
	b.EmitAt("l.callf.arg", masm.I{A: microcode.ASelFetch, R: rHdr,
		ALU: microcode.ALUAplus1, LC: microcode.LCLoadRM, FF: microcode.FFMemBaseBase + MBGlobal})
	b.Emit(masm.I{ALU: microcode.ALUB, B: microcode.BSelMD, LC: microcode.LCLoadRM, R: rVal,
		FF: microcode.FFMemBaseBase + MBSys})
	b.Emit(spDown)
	b.Emit(masm.I{A: microcode.ASelFetch, R: rSP}) // arg value
	b.Emit(masm.I{ALU: microcode.ALUB, B: microcode.BSelMD, LC: microcode.LCLoadT})
	b.Emit(spDown)
	b.Emit(masm.I{A: microcode.ASelFetch, R: rSP}) // arg tag
	b.Emit(masm.I{B: microcode.BSelMD, FF: microcode.FFPutQ})
	b.Emit(masm.I{A: microcode.ASelRM, R: rVal, ALU: microcode.ALUAplus1,
		LC: microcode.LCLoadRM, FF: microcode.FFRMDestBase + rVal2})
	b.Emit(masm.I{A: microcode.ASelFetch, R: rVal}) // old tag
	b.Emit(masm.I{A: microcode.ASelStore, R: rGP, B: microcode.BSelMD,
		ALU: microcode.ALUAplus1, LC: microcode.LCLoadRM})
	b.Emit(masm.I{A: microcode.ASelFetch, R: rVal2}) // old value
	b.Emit(masm.I{A: microcode.ASelStore, R: rGP, B: microcode.BSelMD,
		ALU: microcode.ALUAplus1, LC: microcode.LCLoadRM})
	b.Emit(masm.I{A: microcode.ASelStore, R: rVal, B: microcode.BSelQ})  // new tag
	b.Emit(masm.I{A: microcode.ASelStore, R: rVal2, B: microcode.BSelT}) // new value
	b.Emit(masm.I{A: microcode.ASelStore, R: rNew, B: microcode.BSelQ,
		ALU: microcode.ALUAplus1, LC: microcode.LCLoadRM})
	b.Emit(masm.I{A: microcode.ASelStore, R: rNew, B: microcode.BSelT,
		ALU: microcode.ALUAplus1, LC: microcode.LCLoadRM, Flow: masm.Goto("l.callf.head")})
	// Rebase and transfer.
	b.EmitAt("l.callf.fin", masm.I{A: microcode.ASelRM, R: rFB, ALU: microcode.ALUA,
		LC: microcode.LCLoadRM, FF: microcode.FFRMDestBase + rL})
	b.Emit(masm.I{FF: microcode.FFMemBaseBase + MBLocal})
	b.Emit(masm.I{B: microcode.BSelRM, R: rL, FF: microcode.FFPutBaseLo})
	b.Emit(masm.I{FF: microcode.FFMemBaseBase + MBSys})
	b.Emit(masm.I{B: microcode.BSelRM, R: rPC, FF: microcode.FFIFUReset})
	b.Emit(masm.I{Flow: jump})
}

// emitLispReturn writes RETF: restore the caller's frame and PC, undo this
// call's shallow bindings (walking the parameter list and the binding-stack
// records in step), and free the frame.
func emitLispReturn(b *masm.Builder, jump masm.Flow) {
	b.EmitAt("l.retf", masm.I{A: microcode.ASelFetch, R: rZero,
		FF: microcode.FFMemBaseBase + MBLocal})
	b.Emit(masm.I{ALU: microcode.ALUB, B: microcode.BSelMD, LC: microcode.LCLoadRM, R: rTmp,
		FF: microcode.FFMemBaseBase + MBSys})
	b.Emit(masm.I{A: microcode.ASelFetch, R: rOne, FF: microcode.FFMemBaseBase + MBLocal})
	b.Emit(masm.I{ALU: microcode.ALUB, B: microcode.BSelMD, LC: microcode.LCLoadRM, R: rPC,
		FF: microcode.FFMemBaseBase + MBSys})
	b.Emit(masm.I{A: microcode.ASelRM, R: rOne, ALU: microcode.ALUAplus1,
		LC: microcode.LCLoadRM, FF: microcode.FFRMDestBase + rVal})
	b.Emit(masm.I{A: microcode.ASelFetch, R: rVal, ALU: microcode.ALUAplus1,
		LC: microcode.LCLoadRM, FF: microcode.FFMemBaseBase + MBLocal}) // frame[2]: param list
	b.Emit(masm.I{ALU: microcode.ALUB, B: microcode.BSelMD, LC: microcode.LCLoadRM, R: rHdr,
		FF: microcode.FFMemBaseBase + MBSys})
	b.Emit(masm.I{A: microcode.ASelFetch, R: rVal, FF: microcode.FFMemBaseBase + MBLocal}) // frame[3]: nargs
	b.Emit(masm.I{B: microcode.BSelMD, FF: microcode.FFPutCount})
	// rVal2 ← rGP − 2·nargs: the start of this call's binding records;
	// rGP rewinds there.
	b.Emit(masm.I{ALU: microcode.ALUB, B: microcode.BSelMD, LC: microcode.LCLoadT,
		FF: microcode.FFMemBaseBase + MBSys})
	b.Emit(masm.I{A: microcode.ASelT, B: microcode.BSelT, ALU: microcode.ALUAplusB,
		LC: microcode.LCLoadT})
	b.Emit(masm.I{A: microcode.ASelRM, R: rGP, B: microcode.BSelT, ALU: microcode.ALUAminusB,
		LC: microcode.LCLoadRM, FF: microcode.FFRMDestBase + rVal2})
	b.Emit(masm.I{A: microcode.ASelRM, R: rVal2, ALU: microcode.ALUA,
		LC: microcode.LCLoadRM, FF: microcode.FFRMDestBase + rGP})
	// Unbind loop: param symbols forward, binding records forward.
	b.EmitAt("l.retf.head", masm.I{Flow: masm.Branch(microcode.CondCountNZ, "l.retf.fin", "l.retf.un")})
	b.EmitAt("l.retf.un", masm.I{A: microcode.ASelFetch, R: rHdr,
		ALU: microcode.ALUAplus1, LC: microcode.LCLoadRM, FF: microcode.FFMemBaseBase + MBGlobal})
	b.Emit(masm.I{ALU: microcode.ALUB, B: microcode.BSelMD, LC: microcode.LCLoadRM, R: rVal,
		FF: microcode.FFMemBaseBase + MBSys})
	b.Emit(masm.I{A: microcode.ASelFetch, R: rVal2, ALU: microcode.ALUAplus1,
		LC: microcode.LCLoadRM}) // old tag
	b.Emit(masm.I{A: microcode.ASelStore, R: rVal, B: microcode.BSelMD,
		ALU: microcode.ALUAplus1, LC: microcode.LCLoadRM})
	b.Emit(masm.I{A: microcode.ASelFetch, R: rVal2, ALU: microcode.ALUAplus1,
		LC: microcode.LCLoadRM}) // old value
	b.Emit(masm.I{A: microcode.ASelStore, R: rVal, B: microcode.BSelMD,
		Flow: masm.Goto("l.retf.head")})
	// Free the frame, restore the caller.
	b.EmitAt("l.retf.fin", masm.I{B: microcode.BSelRM, R: rL, FF: microcode.FFPutQ})
	b.Emit(masm.I{A: microcode.ASelFetch, R: rAV})
	b.Emit(masm.I{A: microcode.ASelStore, R: rL, B: microcode.BSelMD})
	b.Emit(masm.I{A: microcode.ASelStore, R: rAV, B: microcode.BSelQ})
	b.Emit(masm.I{A: microcode.ASelRM, R: rTmp, ALU: microcode.ALUA,
		LC: microcode.LCLoadRM, FF: microcode.FFRMDestBase + rL})
	b.Emit(masm.I{FF: microcode.FFMemBaseBase + MBLocal})
	b.Emit(masm.I{B: microcode.BSelRM, R: rL, FF: microcode.FFPutBaseLo})
	b.Emit(masm.I{FF: microcode.FFMemBaseBase + MBSys})
	b.Emit(masm.I{B: microcode.BSelRM, R: rPC, FF: microcode.FFIFUReset})
	b.Emit(masm.I{Flow: jump})
}
