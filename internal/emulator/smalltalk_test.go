package emulator

import (
	"testing"

	"dorado/internal/core"
)

// Smalltalk test world layout (absolute word addresses in the heap):
const (
	stIntClass   = VAHeap + 0x000 // SmallInteger class object
	stIntDict    = VAHeap + 0x010
	stPointClass = VAHeap + 0x040 // a two-field Point class
	stPointDict  = VAHeap + 0x050
	stPointObj   = VAHeap + 0x080 // a Point instance {class, x, y}
)

// buildSmalltalkWorld pokes a minimal class schema. Dictionary entries
// route selectors to function-header slots in the global area.
func buildSmalltalkWorld(m *core.Machine, intMethods, ptMethods [][2]uint16) {
	mem := m.Mem()
	mem.Poke(SIClassSlot, stIntClass)

	mem.Poke(stIntClass, 0) // metaclass (unused)
	mem.Poke(stIntClass+1, stIntDict)
	mem.Poke(stIntClass+2, uint16(len(intMethods)))
	for i, e := range intMethods {
		mem.Poke(stIntDict+uint32(2*i), e[0])
		mem.Poke(stIntDict+uint32(2*i)+1, e[1])
	}

	mem.Poke(stPointClass, 0)
	mem.Poke(stPointClass+1, stPointDict)
	mem.Poke(stPointClass+2, uint16(len(ptMethods)))
	for i, e := range ptMethods {
		mem.Poke(stPointDict+uint32(2*i), e[0])
		mem.Poke(stPointDict+uint32(2*i)+1, e[1])
	}

	mem.Poke(stPointObj, stPointClass)
	mem.Poke(stPointObj+1, 30<<1|1) // x = 30 (tagged)
	mem.Poke(stPointObj+2, 12<<1|1) // y = 12
}

func newSTMachine(t *testing.T, build func(a *Asm)) *core.Machine {
	t.Helper()
	p, err := BuildSmalltalk()
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.New(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	a := NewAsm(p)
	build(a)
	code, err := a.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	LoadCode(m, code)
	if err := p.InstallOn(m); err != nil {
		t.Fatal(err)
	}
	return m
}

func stRun(t *testing.T, m *core.Machine, max uint64) []uint16 {
	t.Helper()
	if !m.Run(max) {
		t.Fatalf("did not halt (task %d pc %v)", m.CurTask(), m.CurPC())
	}
	n := int(m.StackPtr() & 0x3F)
	out := make([]uint16, n)
	for i := 1; i <= n; i++ {
		out[i-1] = m.Stack(i)
	}
	return out
}

func TestSmalltalkPushAndAdd(t *testing.T) {
	m := newSTMachine(t, func(a *Asm) {
		a.OpW("PUSHK", 20).OpW("PUSHK", 22).Op("ADDI")
		a.Op("HALT")
	})
	st := stRun(t, m, 100000)
	if len(st) != 1 || st[0] != 42<<1|1 {
		t.Fatalf("stack = %v, want [%d]", st, 42<<1|1)
	}
}

func TestSmalltalkAddTypeCheckTraps(t *testing.T) {
	m := newSTMachine(t, func(a *Asm) {
		a.OpW("PUSHK", 20).Op("PUSHSELF").Op("ADDI") // pointer + int → trap
		a.Op("HALT")
	})
	buildSmalltalkWorld(m, nil, nil)
	// Boot frame receiver (frame[2]) = the Point object.
	m.Mem().Poke(VAFrames+2, stPointObj)
	if !m.Run(100000) {
		t.Fatal("did not halt")
	}
	// Trapped: the result push never happened; two operands remain.
	if got := m.StackPtr() & 0x3F; got != 1 {
		t.Fatalf("stack depth = %d, want 1 (trap before push-back)", got)
	}
}

func TestSmalltalkInstanceVariables(t *testing.T) {
	m := newSTMachine(t, func(a *Asm) {
		a.OpB("PUSHIV", 1).OpB("PUSHIV", 2).Op("ADDI") // x + y (operands are n+1)
		a.OpB("STIV", 1)                               // x ← x+y
		a.OpB("PUSHIV", 1)
		a.Op("HALT")
	})
	buildSmalltalkWorld(m, nil, nil)
	m.Mem().Poke(VAFrames+2, stPointObj)
	st := stRun(t, m, 100000)
	want := uint16(42<<1 | 1)
	if len(st) != 1 || st[0] != want {
		t.Fatalf("stack = %v, want [%d]", st, want)
	}
	if m.Mem().Peek(stPointObj+1) != want {
		t.Errorf("x = %d after STIV", m.Mem().Peek(stPointObj+1))
	}
}

func TestSmalltalkSendToObject(t *testing.T) {
	// Point>>sum: answers x + y + arg. Selector 7.
	m2 := newSTMachine(t, func(a *Asm) {
		// push receiver (via PUSHSELF of the boot frame), push arg, send.
		a.Op("PUSHSELF")
		a.OpW("PUSHK", 1)
		a.OpB2("SEND", 7, 1)
		a.Op("HALT")
		a.Label("sum") // method body: self x + self y + arg (arg = temp 3)
		a.OpB("PUSHIV", 1).OpB("PUSHIV", 2).Op("ADDI")
		a.OpB("PUSHL", 3).Op("ADDI")
		a.Op("RETTOP")
	})
	buildSmalltalkWorld(m2, nil, [][2]uint16{{7, 300}})
	// Method header at global slot 300 → entry byte PC of "sum".
	// Layout: PUSHSELF(1) PUSHK(3) SEND(3) HALT(1) = 8.
	DefineFunc(m2, 300, 8, 0)
	m2.Mem().Poke(VAFrames+2, stPointObj)
	st := stRun(t, m2, 1000000)
	want := uint16(43<<1 | 1) // 30+12+1
	if len(st) != 1 || st[0] != want {
		t.Fatalf("send result = %v, want [%d]", st, want)
	}
}

func TestSmalltalkSendToSmallInteger(t *testing.T) {
	// Integer>>double (selector 3): method reads its receiver from
	// frame[2] via PUSHSELF and adds it to itself.
	m := newSTMachine(t, func(a *Asm) {
		a.OpW("PUSHK", 21)
		a.OpB2("SEND", 3, 0)
		a.Op("HALT")
		a.Label("double")
		a.Op("PUSHSELF").Op("PUSHSELF").Op("ADDI")
		a.Op("RETTOP")
	})
	buildSmalltalkWorld(m, [][2]uint16{{3, 310}}, nil)
	// PUSHK(3) SEND(3) HALT(1) = 7.
	DefineFunc(m, 310, 7, 0)
	st := stRun(t, m, 1000000)
	want := uint16(42<<1 | 1)
	if len(st) != 1 || st[0] != want {
		t.Fatalf("21 double = %v, want [%d]", st, want)
	}
}

func TestSmalltalkMessageNotUnderstood(t *testing.T) {
	m := newSTMachine(t, func(a *Asm) {
		a.OpW("PUSHK", 21)
		a.OpB2("SEND", 99, 0) // unknown selector
		a.Op("HALT")
	})
	buildSmalltalkWorld(m, [][2]uint16{{3, 310}}, nil)
	if !m.Run(1000000) {
		t.Fatal("did not halt")
	}
	// Halted at the trap (message not understood), receiver still stacked.
	if got := m.StackPtr() & 0x3F; got != 1 {
		t.Fatalf("stack depth = %d, want 1", got)
	}
}

func TestSmalltalkDictionaryProbeDepth(t *testing.T) {
	// A selector deeper in the dictionary costs more cycles: dynamic
	// dispatch is the expensive part of Smalltalk (§7's Smalltalk emulator
	// is the slowest of the four).
	run := func(selector uint16, dict [][2]uint16) uint64 {
		m := newSTMachine(t, func(a *Asm) {
			a.OpW("PUSHK", 21)
			a.OpB2("SEND", uint8(selector), 0)
			a.Op("HALT")
			a.Label("noop")
			a.Op("RETTOP")
		})
		buildSmalltalkWorld(m, dict, nil)
		DefineFunc(m, 310, 7, 0)
		if !m.Run(1000000) {
			t.Fatal("did not halt")
		}
		return m.Cycle()
	}
	dict := [][2]uint16{{1, 310}, {2, 310}, {3, 310}, {4, 310}, {5, 310}}
	first := run(1, dict)
	last := run(5, dict)
	if last <= first {
		t.Errorf("probe depth 5 (%d cycles) not slower than depth 1 (%d)", last, first)
	}
}
