package bench

import (
	"fmt"

	"dorado/internal/bitblt"
	"dorado/internal/core"
	"dorado/internal/emulator"
	"dorado/internal/microcode"
	"dorado/internal/obs/prof"
)

// This file runs the microarchitectural profiler over the §7 host
// workloads: each machine runs with the superblock translator and a
// core.Profiler attached, and the per-workload symbolized profiles land in
// a prof.BenchReport (the simbench -profile artifact). The abort-reason
// breakdown is the point: it explains *why* a workload does or does not
// profit from translation — the emulator's superblocks die young on IFU
// dispatch, the disk loop's on device wakeups — where the throughput table
// only shows that it doesn't.

// workloadSymbols returns the masm symbol table of a host workload's
// microcode, for symbolizing its profile. Assembly is deterministic, so
// rebuilding the program here yields the same placement the measured
// machine ran.
func workloadSymbols(id string) (map[string]microcode.Addr, error) {
	switch id {
	case "emulator":
		mesa, err := emulator.BuildMesa()
		if err != nil {
			return nil, err
		}
		return mesa.Micro.Symbols, nil
	case "disk":
		p, err := diskProgram()
		if err != nil {
			return nil, err
		}
		return p.Symbols, nil
	case "fastio":
		p, err := fastioProgram()
		if err != nil {
			return nil, err
		}
		return p.Symbols, nil
	case "bitblt":
		ps, err := bitblt.Build()
		if err != nil {
			return nil, err
		}
		return ps.Micro.Symbols, nil
	default:
		return nil, fmt.Errorf("bench: no symbols for workload %q", id)
	}
}

// RunProfileReport profiles every §7 host workload for budget cycles on
// the translated path (superblocks enabled, profiler attached) and returns
// the per-workload symbolized profiles.
func RunProfileReport(budget uint64) (*prof.BenchReport, error) {
	rep := &prof.BenchReport{Cycles: budget}
	for _, w := range HostWorkloads() {
		run, m, err := w.Build(core.Config{Translation: core.Translation{Enable: true}})
		if err != nil {
			return nil, fmt.Errorf("bench: %s: %w", w.ID, err)
		}
		p := core.NewProfiler()
		m.SetProfiler(p)
		if _, err := run(budget); err != nil {
			return nil, fmt.Errorf("bench: %s: %w", w.ID, err)
		}
		syms, err := workloadSymbols(w.ID)
		if err != nil {
			return nil, err
		}
		rep.Workloads = append(rep.Workloads, prof.WorkloadProfile{
			ID: w.ID, Name: w.Name,
			Profile: prof.Build(p.Snapshot(), prof.NewSymbolTable(syms)),
		})
	}
	return rep, nil
}
