package bench

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
)

// WriteJSON is the one JSON encoder shared by cmd/simbench (BENCH_SIM.json)
// and cmd/benchtab -json: indented, trailing newline, HTML escaping off so
// claims quoting the paper stay readable.
func WriteJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

// ReadHostReportFile loads a host report (the BENCH_SIM.json shape) for
// the bench guard.
func ReadHostReportFile(path string) (*HostReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep HostReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, err
	}
	return &rep, nil
}

// WriteJSONFile writes v to path atomically: encode into a temporary file
// in the same directory, then rename over the destination. A reader (or a
// benchmark run killed mid-write) never sees a truncated document.
func WriteJSONFile(path string, v any) error {
	dir, base := filepath.Split(path)
	f, err := os.CreateTemp(dir, base+".tmp*")
	if err != nil {
		return err
	}
	err = WriteJSON(f, v)
	if err == nil {
		err = f.Sync()
	}
	if err != nil {
		f.Close()
		os.Remove(f.Name())
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(f.Name())
		return err
	}
	if err := os.Rename(f.Name(), path); err != nil {
		os.Remove(f.Name())
		return err
	}
	return nil
}

// RowJSON mirrors Row with JSON field names.
type RowJSON struct {
	Name     string `json:"name"`
	Paper    string `json:"paper"`
	Measured string `json:"measured"`
	Note     string `json:"note,omitempty"`
}

// TableJSON is the machine-readable view of an experiment Table: the Err
// field flattens to a string (error values have no useful JSON form).
type TableJSON struct {
	ID    string    `json:"id"`
	Title string    `json:"title"`
	Claim string    `json:"claim"`
	Rows  []RowJSON `json:"rows"`
	Pass  bool      `json:"pass"`
	Err   string    `json:"error,omitempty"`
}

// JSON converts a Table for encoding with WriteJSON.
func (t Table) JSON() TableJSON {
	out := TableJSON{ID: t.ID, Title: t.Title, Claim: t.Claim, Pass: t.Pass}
	if t.Err != nil {
		out.Err = t.Err.Error()
	}
	for _, r := range t.Rows {
		out.Rows = append(out.Rows, RowJSON{Name: r.Name, Paper: r.Paper, Measured: r.Measured, Note: r.Note})
	}
	return out
}
