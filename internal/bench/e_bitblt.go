package bench

import (
	"dorado/internal/bitblt"
	"dorado/internal/core"
)

// E3BitBlt reproduces the §7 BitBlt bandwidths: "34 megabits/sec for
// simple cases of erasing or scrolling a screen. More complex operations,
// where the result is a function of the source object, the destination
// object and a filter, run at 24 megabits/sec."
func E3BitBlt() Table {
	const title = "BitBlt bandwidth by operation class"
	const claim = `"move display objects around in memory at 34 megabits/sec for simple cases ...; more complex operations ... 24 megabits/sec" (§7)`
	ps, err := bitblt.Build()
	if err != nil {
		return fail("E3", title, err)
	}
	// A 2048×256-bit region (128 words × 256 rows = 512 kbit), the scale of
	// a scrolling screen operation.
	base := bitblt.Params{
		Src: 0x10000, Dst: 0x40000, WidthWords: 128, Height: 256,
		SrcPitch: 128, DstPitch: 128,
	}
	run := func(p bitblt.Params) (float64, error) {
		m, err := core.New(core.Config{})
		if err != nil {
			return 0, err
		}
		// Screen-like contents.
		for a := p.Src; a < p.Src+uint32(p.SrcPitch*p.Height); a++ {
			m.Mem().Poke(a, uint16(a*2654435761))
		}
		cycles, err := ps.Run(m, p)
		if err != nil {
			return 0, err
		}
		return bitblt.MBitPerSec(p, cycles), nil
	}
	cases := []struct {
		name  string
		paper string
		p     bitblt.Params
	}{
		{"Fill (erase)", "34 (simple)", func() bitblt.Params { p := base; p.Op = bitblt.Fill; p.FillValue = 0; return p }()},
		{"Copy (scroll)", "34 (simple)", func() bitblt.Params { p := base; p.Op = bitblt.Copy; return p }()},
		{"CopyShifted (bit-aligned)", "(between)", func() bitblt.Params {
			p := base
			p.Op = bitblt.CopyShifted
			p.BitOffset = 5
			return p
		}()},
		{"Merge (src,dst,filter)", "24 (complex)", func() bitblt.Params {
			p := base
			p.Op = bitblt.Merge
			p.Filter = 0xAAAA
			return p
		}()},
	}
	var rows []Row
	rates := map[string]float64{}
	for _, c := range cases {
		mbps, err := run(c.p)
		if err != nil {
			return fail("E3", title, err)
		}
		rates[c.name] = mbps
		rows = append(rows, Row{c.name, c.paper + " Mbit/s", f1(mbps) + " Mbit/s", ""})
	}
	simple := rates["Copy (scroll)"]
	complexRate := rates["Merge (src,dst,filter)"]
	pass := simple > complexRate && // the paper's ordering
		simple > 20 && simple < 150 && // tens of Mbit/s
		complexRate > 10 && complexRate < 60 &&
		rates["CopyShifted (bit-aligned)"] < simple
	return Table{ID: "E3", Title: title, Claim: claim, Rows: rows, Pass: pass}
}
