package bench

import "testing"

func guardReport(speedup map[string]float64, results []HostResult) *HostReport {
	return &HostReport{Speedup: speedup, Results: results}
}

func TestGuardPassesIdenticalReports(t *testing.T) {
	base := guardReport(map[string]float64{"emulator": 2.3, "disk": 2.0, "fastio": 1.8, "bitblt": 2.1}, nil)
	cur := guardReport(base.Speedup, []HostResult{
		{Workload: "emulator", Path: PathPredecoded, CyclesPerSec: 25e6},
		{Workload: "emulator", Path: PathInstrumented, CyclesPerSec: 24e6},
	})
	checks, ok := Guard(base, cur, DefaultGuardThresholds)
	if !ok {
		t.Fatalf("identical reports failed the guard: %v", checks)
	}
	// 4 metrics-off + 4 prof-off (same observable, own budget) + 1
	// metrics-on (only emulator has both paths; no profiled result, so no
	// prof-on row).
	if len(checks) != 9 {
		t.Errorf("%d checks, want 9", len(checks))
	}
}

func TestGuardCatchesSpeedupRegression(t *testing.T) {
	base := guardReport(map[string]float64{"emulator": 2.3}, nil)
	cur := guardReport(map[string]float64{"emulator": 2.3 * 0.90}, nil) // 10% down
	checks, ok := Guard(base, cur, DefaultGuardThresholds)
	if ok {
		t.Fatal("10% speedup regression passed a 3% threshold")
	}
	var failed bool
	for _, c := range checks {
		if !c.OK && c.Check == "metrics-off" && c.Workload == "emulator" {
			failed = true
		}
	}
	if !failed {
		t.Errorf("no failing metrics-off check in %v", checks)
	}
}

func TestGuardAllowsSmallRegression(t *testing.T) {
	base := guardReport(map[string]float64{"emulator": 2.3}, nil)
	cur := guardReport(map[string]float64{"emulator": 2.3 * 0.98}, nil) // 2% down
	if _, ok := Guard(base, cur, DefaultGuardThresholds); !ok {
		t.Error("2% regression failed a 3% threshold")
	}
}

func TestGuardCatchesInstrumentationOverhead(t *testing.T) {
	cur := guardReport(nil, []HostResult{
		{Workload: "disk", Path: PathPredecoded, CyclesPerSec: 30e6},
		{Workload: "disk", Path: PathInstrumented, CyclesPerSec: 30e6 * 0.72}, // 28% overhead
	})
	checks, ok := Guard(&HostReport{}, cur, DefaultGuardThresholds)
	if ok {
		t.Fatalf("28%% instrumentation overhead passed a 20%% threshold: %v", checks)
	}
}

func TestGuardCatchesProfilerOverhead(t *testing.T) {
	cur := guardReport(nil, []HostResult{
		{Workload: "disk", Path: PathPredecoded, CyclesPerSec: 30e6},
		{Workload: "disk", Path: PathProfiled, CyclesPerSec: 30e6 * 0.80}, // 20% overhead
	})
	checks, ok := Guard(&HostReport{}, cur, DefaultGuardThresholds)
	if ok {
		t.Fatalf("20%% profiler overhead passed a 15%% threshold: %v", checks)
	}
	var failed bool
	for _, c := range checks {
		if !c.OK && c.Check == "prof-on" && c.Workload == "disk" {
			failed = true
		}
	}
	if !failed {
		t.Errorf("no failing prof-on check in %v", checks)
	}

	// 10% overhead is inside the budget.
	cur.Results[1].CyclesPerSec = 30e6 * 0.90
	if _, ok := Guard(&HostReport{}, cur, DefaultGuardThresholds); !ok {
		t.Error("10% profiler overhead failed a 15% threshold")
	}
}

func TestGuardToleratesMissingProfiledPath(t *testing.T) {
	// A report recorded before the profiled path existed: no prof-on rows,
	// and the guard passes.
	cur := guardReport(nil, []HostResult{
		{Workload: "disk", Path: PathPredecoded, CyclesPerSec: 30e6},
	})
	checks, ok := Guard(&HostReport{}, cur, DefaultGuardThresholds)
	if !ok {
		t.Fatalf("guard failed: %v", checks)
	}
	for _, c := range checks {
		if c.Check == "prof-on" {
			t.Errorf("prof-on check without a profiled result: %v", c)
		}
	}
}

func TestGuardToleratesMissingInstrumentedPath(t *testing.T) {
	// A PR-1-era report has no instrumented results: only the speedup
	// checks run, and nothing panics.
	base := guardReport(map[string]float64{"emulator": 2.3}, nil)
	cur := guardReport(map[string]float64{"emulator": 2.35}, []HostResult{
		{Workload: "emulator", Path: PathPredecoded, CyclesPerSec: 25e6},
	})
	checks, ok := Guard(base, cur, DefaultGuardThresholds)
	if !ok {
		t.Fatalf("guard failed: %v", checks)
	}
	for _, c := range checks {
		if c.Check == "metrics-on" {
			t.Errorf("metrics-on check without an instrumented result: %v", c)
		}
	}
}

func TestGuardTranslatedAggregate(t *testing.T) {
	// Two of four workloads reach 1.5x: the aggregate passes even though
	// the per-workload rows for the other two show misses.
	cur := guardReport(nil, nil)
	cur.Translation = map[string]float64{
		"emulator": 1.02, "disk": 1.7, "fastio": 1.1, "bitblt": 1.55,
	}
	checks, ok := Guard(&HostReport{}, cur, DefaultGuardThresholds)
	if !ok {
		t.Fatalf("2-of-4 translated workloads at 1.5x failed the guard: %v", checks)
	}
	var agg *GuardCheck
	rows := 0
	for i, c := range checks {
		if c.Check != "translated" {
			continue
		}
		if c.Workload == "any-2" {
			agg = &checks[i]
		} else {
			rows++
			if !c.OK {
				t.Errorf("per-workload translated row %s marked FAIL; rows are informational", c.Workload)
			}
		}
	}
	if agg == nil || !agg.OK || agg.Current != 2 {
		t.Fatalf("aggregate translated check wrong: %+v", agg)
	}
	if rows != 4 {
		t.Errorf("%d per-workload translated rows, want 4", rows)
	}

	// Only one workload at 1.5x: the aggregate fails.
	cur.Translation = map[string]float64{
		"emulator": 1.02, "disk": 1.7, "fastio": 1.1, "bitblt": 1.2,
	}
	if _, ok := Guard(&HostReport{}, cur, DefaultGuardThresholds); ok {
		t.Fatal("1-of-4 translated workloads at 1.5x passed the guard")
	}
}

func TestGuardToleratesMissingTranslation(t *testing.T) {
	// A report recorded before the translated path existed has no
	// Translation map: no translated checks run, and the guard passes.
	base := guardReport(map[string]float64{"emulator": 2.3}, nil)
	cur := guardReport(map[string]float64{"emulator": 2.3}, nil)
	checks, ok := Guard(base, cur, DefaultGuardThresholds)
	if !ok {
		t.Fatalf("guard failed: %v", checks)
	}
	for _, c := range checks {
		if c.Check == "translated" {
			t.Errorf("translated check without translation data: %v", c)
		}
	}
}

// End to end on real (tiny) measurements: the instrumented path must work
// and the report must carry all three paths with sane ratios.
func TestRunHostReportThreePaths(t *testing.T) {
	if testing.Short() {
		t.Skip("host measurement in -short")
	}
	rep, err := RunHostReport(50_000, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range HostWorkloads() {
		for _, path := range []string{PathPredecoded, PathReference, PathInstrumented, PathProfiled} {
			r := rep.Result(w.ID, path)
			if r == nil {
				t.Fatalf("missing (%s, %s)", w.ID, path)
			}
			if r.CyclesPerSec <= 0 {
				t.Errorf("(%s, %s): %f cycles/sec", w.ID, path, r.CyclesPerSec)
			}
		}
		if rep.Overhead[w.ID] <= 0 {
			t.Errorf("%s: overhead %f", w.ID, rep.Overhead[w.ID])
		}
		if rep.ProfOverhead[w.ID] <= 0 {
			t.Errorf("%s: prof overhead %f", w.ID, rep.ProfOverhead[w.ID])
		}
	}
}
