// Package bench regenerates every quantitative claim of the paper's
// evaluation (§7, plus the performance arguments of §4–§6) on the
// simulator: one experiment per claim, each producing a table of paper
// value vs measured value with a shape verdict.
//
// The experiment index lives in DESIGN.md; the measured results are
// recorded in EXPERIMENTS.md. cmd/benchtab prints all tables; the
// repository-root benchmarks wrap each experiment in a testing.B.
package bench

import (
	"fmt"
	"strings"
)

// Row is one line of an experiment table.
type Row struct {
	Name     string
	Paper    string // the paper's reported value, verbatim units
	Measured string
	Note     string
}

// Table is one experiment's result.
type Table struct {
	ID    string
	Title string
	Claim string // the paper sentence being reproduced (abridged)
	Rows  []Row
	// Pass reports the shape check: orderings and rough magnitudes match
	// the paper (absolute equality is not expected on a simulator).
	Pass bool
	Err  error
}

// String renders the table for terminal output.
func (t Table) String() string {
	var b strings.Builder
	verdict := "SHAPE OK"
	if !t.Pass {
		verdict = "SHAPE MISMATCH"
	}
	if t.Err != nil {
		verdict = "ERROR: " + t.Err.Error()
	}
	fmt.Fprintf(&b, "%s  %s  [%s]\n", t.ID, t.Title, verdict)
	fmt.Fprintf(&b, "  claim: %s\n", t.Claim)
	w := 8
	for _, r := range t.Rows {
		if len(r.Name) > w {
			w = len(r.Name)
		}
	}
	fmt.Fprintf(&b, "  %-*s  %-18s  %-18s  %s\n", w, "case", "paper", "measured", "note")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "  %-*s  %-18s  %-18s  %s\n", w, r.Name, r.Paper, r.Measured, r.Note)
	}
	return b.String()
}

// Experiment pairs an ID with its runner.
type Experiment struct {
	ID  string
	Run func() Table
}

// Experiments lists every experiment in DESIGN.md order.
func Experiments() []Experiment {
	return []Experiment{
		{"E1", E1MesaSimpleOps},
		{"E2", E2OpcodeClasses},
		{"E3", E3BitBlt},
		{"E4", E4DiskUtilization},
		{"E5", E5FastIO},
		{"E6", E6SlowIO},
		{"E7", E7Placement},
		{"E8", E8GrainAblation},
		{"E9", E9TaskSwitch},
		{"E10", E10BypassAblation},
		{"E11", E11BranchAblation},
		{"E12", E12HoldVsAlternatives},
		{"E13", E13MemoryLatency},
		{"E14", E14FunctionCall},
	}
}

// All runs every experiment.
func All() []Table {
	var out []Table
	for _, e := range Experiments() {
		out = append(out, e.Run())
	}
	return out
}

func fail(id, title string, err error) Table {
	return Table{ID: id, Title: title, Err: err}
}

func f1(v float64) string  { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func pct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }
