package bench

import "testing"

func TestRunProfileReport(t *testing.T) {
	if testing.Short() {
		t.Skip("profiled measurement in -short")
	}
	rep, err := RunProfileReport(50_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Workloads) != len(HostWorkloads()) {
		t.Fatalf("%d workload profiles, want %d", len(rep.Workloads), len(HostWorkloads()))
	}
	for _, w := range rep.Workloads {
		if len(w.Profile.Addrs) == 0 {
			t.Errorf("%s: empty profile", w.ID)
		}
		// Every workload must carry a non-empty abort-reason breakdown —
		// the artifact cmd/profview and benchtab -profile render.
		var exits uint64
		for _, n := range w.Profile.Exits {
			exits += n
		}
		if exits == 0 {
			t.Errorf("%s: no superblock exits recorded", w.ID)
		}
		symbolized := false
		for _, a := range w.Profile.Addrs {
			// Unsymbolized rows fall back to the bare "page.word" form.
			if a.Cycles > 0 && a.Name != a.Addr.String() {
				symbolized = true
				break
			}
		}
		if !symbolized {
			t.Errorf("%s: no symbolized hot address", w.ID)
		}
	}
}
