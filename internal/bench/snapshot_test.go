package bench

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"testing"

	"dorado/internal/core"
)

// This file is the workload-level checkpointing suite: every §7 workload
// family must be resumable from a snapshot at any cycle with no observable
// difference, on both interpreter paths. diff_test.go proves the two paths
// compute the same machine; these tests prove a machine is the same machine
// after a save/restore round trip through the serialized format.

// snapshotPaths are the execution paths the checkpointing suite covers.
// Snapshots are path-independent (derived caches — predecode, superblocks,
// hotness counters — are never serialized), so every path must produce and
// accept the same bytes.
var snapshotPaths = []struct {
	name string
	cfg  core.Config
}{
	{"predecoded", core.Config{}},
	{"reference", core.Config{Reference: true}},
	{"translated", core.Config{Translation: core.Translation{Enable: true, HotThreshold: 8}}},
}

// TestSplitRunEquivalence: running N cycles straight must equal running k
// cycles, snapshotting, restoring into a freshly built machine, and running
// the remaining N−k — for every workload, several split points, every path.
func TestSplitRunEquivalence(t *testing.T) {
	const total = 8000
	for _, w := range Workloads() {
		for _, p := range snapshotPaths {
			t.Run(fmt.Sprintf("%s/%s", w.ID, p.name), func(t *testing.T) {
				cfg := p.cfg
				straight, err := w.Build(cfg)
				if err != nil {
					t.Fatal(err)
				}
				straight.RunCycles(total)
				want := straight.Snapshot()

				for _, k := range []uint64{1, 137, 4000, 7999} {
					first, err := w.Build(cfg)
					if err != nil {
						t.Fatal(err)
					}
					first.RunCycles(k)
					mid := first.Snapshot()

					second, err := w.Build(cfg)
					if err != nil {
						t.Fatal(err)
					}
					if err := second.Restore(mid); err != nil {
						t.Fatalf("k=%d: restore: %v", k, err)
					}
					second.RunCycles(total - k)
					if got := second.Snapshot(); !bytes.Equal(got, want) {
						t.Errorf("k=%d: split run diverged from straight run", k)
					}
				}
			})
		}
	}
}

// goldenHashes pins the exact serialized machine state of every workload
// after 5000 predecoded cycles. These change whenever the snapshot format,
// the simulated machine's behavior, or a workload's setup changes — each of
// which should be a deliberate, reviewed event. On mismatch the test prints
// the current hash; paste it here once the change is understood.
var goldenHashes = map[string]string{
	"emulator": "73896bd159681df8a3bc19b861a4febb7830f0f1300e4148cf273652ac4faf69",
	"disk":     "ac7c024c2f51729c70860c8559adc11b66dc6e7bdf8a4cee14714ad744cb437a",
	"fastio":   "7709b2c790ad111994dbb2248becc94c1f309e6c7e589b17e9ccc68f798e732c",
	"slowio":   "a42382ef700d07588ebb80f2771cb77edb2df26efdaa8566a9b79519da9f34a2",
	"bitblt":   "cf3cdafc2bc2d16870a9570cd7883a3292be881f6988442339ae4d3fd8777410",
}

// TestGoldenSnapshots checks the content hash of each workload's snapshot
// at a fixed cycle count — on every execution path, which must all hash the
// same — and that restoring that snapshot re-serializes byte-identically
// (the round-trip property at workload scale).
func TestGoldenSnapshots(t *testing.T) {
	const cycles = 5000
	for _, w := range Workloads() {
		t.Run(w.ID, func(t *testing.T) {
			want, ok := goldenHashes[w.ID]
			if !ok || want == "" {
				t.Fatalf("no golden hash for %q", w.ID)
			}
			for _, p := range snapshotPaths {
				m, err := w.Build(p.cfg)
				if err != nil {
					t.Fatal(err)
				}
				m.RunCycles(cycles)
				snap := m.Snapshot()
				h := sha256.Sum256(snap)
				if got := hex.EncodeToString(h[:]); got != want {
					t.Errorf("%s: snapshot hash changed after %d cycles:\n got %s\nwant %s\n"+
						"(expected only when the state format or machine behavior deliberately changes)",
						p.name, cycles, got, want)
				}

				fresh, err := w.Build(p.cfg)
				if err != nil {
					t.Fatal(err)
				}
				if err := fresh.Restore(snap); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(fresh.Snapshot(), snap) {
					t.Errorf("%s: restore → snapshot is not byte-identical", p.name)
				}
			}
		})
	}
}
