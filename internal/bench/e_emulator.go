package bench

import (
	"fmt"

	"dorado/internal/core"
	"dorado/internal/emulator"
)

// buildEmu assembles a macroprogram for emulator prog, installs both on a
// fresh machine, applies any extra setup, and runs to halt.
func buildEmu(prog *emulator.Program, build func(a *emulator.Asm), setup func(m *core.Machine, a *emulator.Asm) error) (*core.Machine, error) {
	m, err := core.New(core.Config{})
	if err != nil {
		return nil, err
	}
	a := emulator.NewAsm(prog)
	build(a)
	if err := a.Install(m); err != nil {
		return nil, err
	}
	if err := prog.InstallOn(m); err != nil {
		return nil, err
	}
	if setup != nil {
		if err := setup(m, a); err != nil {
			return nil, err
		}
	}
	if !m.Run(50_000_000) {
		return nil, fmt.Errorf("bench: emulator run did not halt (task %d pc %v)", m.CurTask(), m.CurPC())
	}
	return m, nil
}

// opCost measures the µinstructions consumed per repetition of a code
// fragment by differencing two runs (k and 2k repetitions), cancelling all
// prelude, dispatch-boot, and halt overheads exactly.
func opCost(prog *emulator.Program, k int,
	emit func(a *emulator.Asm, reps int), setup func(m *core.Machine, a *emulator.Asm) error) (float64, error) {
	run := func(reps int) (uint64, error) {
		m, err := buildEmu(prog, func(a *emulator.Asm) { emit(a, reps) }, setup)
		if err != nil {
			return 0, err
		}
		return m.Stats().Executed, nil
	}
	e1, err := run(k)
	if err != nil {
		return 0, err
	}
	e2, err := run(2 * k)
	if err != nil {
		return 0, err
	}
	return float64(e2-e1) / float64(k), nil
}

// E1MesaSimpleOps reproduces the headline claim: "can execute a simple
// macroinstruction in one cycle" — a warm stream of one-byte Mesa opcodes
// sustains ≈1 cycle per macroinstruction end to end.
func E1MesaSimpleOps() Table {
	const title = "Simple macroinstructions per cycle (Mesa)"
	const claim = `"can execute a simple macroinstruction in one cycle" (abstract, §3)`
	mesa, err := emulator.BuildMesa()
	if err != nil {
		return fail("E1", title, err)
	}
	const n = 400
	m, err := buildEmu(mesa, func(a *emulator.Asm) {
		a.OpB("LIB", 1)
		for i := 1; i < n; i++ {
			a.Op("DUP").Op("DROP")
		}
		a.Op("HALT")
	}, nil)
	if err != nil {
		return fail("E1", title, err)
	}
	perOp := float64(m.Cycle()) / float64(2*n)
	return Table{
		ID: "E1", Title: title, Claim: claim,
		Rows: []Row{
			{"cycles/simple op", "1", f2(perOp), fmt.Sprintf("%d ops in %d cycles incl. startup", 2*n, m.Cycle())},
		},
		Pass: perOp < 1.5,
	}
}

// E2OpcodeClasses reproduces the per-class microinstruction counts of §7.
func E2OpcodeClasses() Table {
	const title = "Microinstructions per opcode class"
	const claim = `"load or store ... one or two microinstructions in Mesa (or BCPL), and five in Lisp; ... complex operations five to ten in Mesa and ten to twenty in Lisp" (§7)`
	mesa, err := emulator.BuildMesa()
	if err != nil {
		return fail("E2", title, err)
	}
	bcpl, err := emulator.BuildBCPL()
	if err != nil {
		return fail("E2", title, err)
	}
	lisp, err := emulator.BuildLisp()
	if err != nil {
		return fail("E2", title, err)
	}
	st, err := emulator.BuildSmalltalk()
	if err != nil {
		return fail("E2", title, err)
	}
	const k = 24

	// Mesa. LIB and DROP are single-microinstruction by construction; use
	// them as fillers of known cost 1.
	mesaPair := func(emitOne func(a *emulator.Asm)) (float64, error) {
		return opCost(mesa, k, func(a *emulator.Asm, reps int) {
			for i := 0; i < reps; i++ {
				emitOne(a)
			}
			a.Op("HALT")
		}, nil)
	}
	mesaLoad, err := mesaPair(func(a *emulator.Asm) { a.OpB("LL", 4).Op("DROP") })
	if err != nil {
		return fail("E2", title, err)
	}
	mesaLoad -= 1 // DROP
	mesaStore, err := mesaPair(func(a *emulator.Asm) { a.OpB("LIB", 7).OpB("SL", 4) })
	if err != nil {
		return fail("E2", title, err)
	}
	mesaStore -= 1 // LIB
	mesaArith, err := mesaPair(func(a *emulator.Asm) { a.OpB("LIB", 7).Op("ADD") })
	if err != nil {
		return fail("E2", title, err)
	}
	mesaArith -= 1 // LIB (ADD leaves depth unchanged given the seed below)
	mesaField, err := opCost(mesa, k, func(a *emulator.Asm, reps int) {
		for i := 0; i < reps; i++ {
			a.OpW("LIW", 0x0100).OpW("RF", emulator.ExtractCtl(4, 8)).Op("DROP")
		}
		a.Op("HALT")
	}, nil)
	if err != nil {
		return fail("E2", title, err)
	}
	mesaField -= 2 // LIW + DROP

	// BCPL: loads/stores are stack-neutral (accumulator machine).
	bcplLoad, err := opCost(bcpl, k, func(a *emulator.Asm, reps int) {
		for i := 0; i < reps; i++ {
			a.OpB("LDL", 2)
		}
		a.Op("HALT")
	}, nil)
	if err != nil {
		return fail("E2", title, err)
	}
	bcplStore, err := opCost(bcpl, k, func(a *emulator.Asm, reps int) {
		for i := 0; i < reps; i++ {
			a.OpB("STL", 2)
		}
		a.Op("HALT")
	}, nil)
	if err != nil {
		return fail("E2", title, err)
	}

	// Lisp: PUSHK costs 3 by construction; use it to split pairs.
	lispKStore, err := opCost(lisp, k, func(a *emulator.Asm, reps int) {
		for i := 0; i < reps; i++ {
			a.OpW("PUSHK", 5).OpB("POPL", 4)
		}
		a.Op("HALT")
	}, nil)
	if err != nil {
		return fail("E2", title, err)
	}
	lispStore := lispKStore - 3
	lispLoadStore, err := opCost(lisp, k, func(a *emulator.Asm, reps int) {
		for i := 0; i < reps; i++ {
			a.OpB("PUSHL", 4).OpB("POPL", 6)
		}
		a.Op("HALT")
	}, nil)
	if err != nil {
		return fail("E2", title, err)
	}
	lispLoad := lispLoadStore - lispStore
	lispArith, err := opCost(lisp, k, func(a *emulator.Asm, reps int) {
		for i := 0; i < reps; i++ {
			a.OpB("PUSHL", 4).OpB("PUSHL", 4).Op("ADDF").OpB("POPL", 6)
		}
		a.Op("HALT")
	}, lispSeedFixnumLocal)
	if err != nil {
		return fail("E2", title, err)
	}
	lispArith -= 2*lispLoad + lispStore
	lispCar, err := opCost(lisp, k, func(a *emulator.Asm, reps int) {
		for i := 0; i < reps; i++ {
			a.OpB("PUSHL", 4).Op("CAR").OpB("POPL", 6)
		}
		a.Op("HALT")
	}, lispSeedConsLocal)
	if err != nil {
		return fail("E2", title, err)
	}
	lispCar -= lispLoad + lispStore

	// Smalltalk send (the paper reports no number; measured for context).
	stSend, err := opCost(st, k, func(a *emulator.Asm, reps int) {
		for i := 0; i < reps; i++ {
			a.OpW("PUSHK", 1).OpB2("SEND", 3, 0)
		}
		a.Op("HALT")
		a.Label("noop")
		a.Op("RETTOP")
	}, func(m *core.Machine, a *emulator.Asm) error {
		return smalltalkNoopWorld(m, a)
	})
	if err != nil {
		return fail("E2", title, err)
	}
	stSend -= 3 // PUSHK

	pass := mesaLoad <= 3 && mesaStore <= 2 && lispLoad >= 4 && lispStore >= 4 &&
		lispLoad > mesaLoad && lispCar >= 8 && mesaField >= 4 && mesaField <= 10 &&
		lispArith >= 10 && lispArith <= 25
	return Table{
		ID: "E2", Title: title, Claim: claim,
		Rows: []Row{
			{"Mesa load (LL)", "1–2", f1(mesaLoad), "hardware stack + IFU-displacement fetch"},
			{"Mesa store (SL)", "1–2", f1(mesaStore), "one microinstruction"},
			{"BCPL load (LDL)", "1–2", f1(bcplLoad), "accumulator machine"},
			{"BCPL store (STL)", "1–2", f1(bcplStore), ""},
			{"Mesa arith (ADD)", "1 (simple op)", f1(mesaArith), ""},
			{"Mesa field (RF)", "5–10", f1(mesaField), "shifter extract"},
			{"Lisp load (PUSHL)", "5", f1(lispLoad), "32-bit item, stack in memory"},
			{"Lisp store (POPL)", "5", f1(lispStore), ""},
			{"Lisp arith (ADDF)", "10–20", f1(lispArith), "runtime type checks"},
			{"Lisp CAR", "10–20", f1(lispCar), "type check + cell fetch"},
			{"Smalltalk SEND", "(not reported)", f1(stSend), "class fetch + dictionary probe + activation"},
		},
		Pass: pass,
	}
}

// E14FunctionCall reproduces "Function calls take about 50 microinstructions
// for Mesa and 200 for Lisp" across argument counts.
func E14FunctionCall() Table {
	const title = "Function call+return microinstructions"
	const claim = `"Function calls take about 50 microinstructions for Mesa and 200 for Lisp" (§7)`
	mesa, err := emulator.BuildMesa()
	if err != nil {
		return fail("E14", title, err)
	}
	lisp, err := emulator.BuildLisp()
	if err != nil {
		return fail("E14", title, err)
	}
	const k = 16
	var rows []Row
	var mesaCosts, lispCosts []float64
	for _, nargs := range []int{0, 2, 4} {
		mc, err := opCost(mesa, k, func(a *emulator.Asm, reps int) {
			for i := 0; i < reps; i++ {
				for j := 0; j < nargs; j++ {
					a.OpB("LIB", uint8(j))
				}
				a.OpW("CALL", 100)
			}
			a.Op("HALT")
			a.Label("f")
			a.Op("RET")
		}, func(m *core.Machine, a *emulator.Asm) error {
			pc, err := a.LabelPC("f")
			if err != nil {
				return err
			}
			emulator.DefineFunc(m, 100, pc, uint16(nargs))
			return nil
		})
		if err != nil {
			return fail("E14", title, err)
		}
		mc -= float64(nargs) // LIB pushes
		lc, err := opCost(lisp, k, func(a *emulator.Asm, reps int) {
			for i := 0; i < reps; i++ {
				for j := 0; j < nargs; j++ {
					a.OpW("PUSHK", uint16(j))
				}
				a.OpW("CALLF", 200)
			}
			a.Op("HALT")
			a.Label("f")
			a.Op("RETF")
		}, func(m *core.Machine, a *emulator.Asm) error {
			pc, err := a.LabelPC("f")
			if err != nil {
				return err
			}
			syms := make([]uint16, nargs)
			for j := range syms {
				syms[j] = uint16(emulator.VAHeap + 0x200 + 4*j)
			}
			emulator.DefineLispFunc(m, 200, pc, syms)
			return nil
		})
		if err != nil {
			return fail("E14", title, err)
		}
		lc -= float64(nargs) * 3 // PUSHK pushes
		mesaCosts = append(mesaCosts, mc)
		lispCosts = append(lispCosts, lc)
		rows = append(rows,
			Row{fmt.Sprintf("Mesa call+ret, %d args", nargs), "≈50", f1(mc), "frame alloc + arg move"},
			Row{fmt.Sprintf("Lisp call+ret, %d args", nargs), "≈200", f1(lc), "frame + shallow binding + unbind"},
		)
	}
	// Shape: Lisp above Mesa at every arity and ≫ (2×+) once arguments are
	// bound; both grow with argument count; magnitudes in the tens (Mesa)
	// and around a hundred (Lisp).
	pass := true
	for i := range mesaCosts {
		if lispCosts[i] <= mesaCosts[i] {
			pass = false
		}
	}
	if lispCosts[1] < 2*mesaCosts[1] || lispCosts[2] < 2*mesaCosts[2] {
		pass = false
	}
	if !(mesaCosts[2] > mesaCosts[0] && lispCosts[2] > lispCosts[0]) {
		pass = false
	}
	if mesaCosts[1] < 20 || mesaCosts[1] > 80 || lispCosts[1] < 60 {
		pass = false
	}
	return Table{ID: "E14", Title: title, Claim: claim, Rows: rows, Pass: pass}
}

// lispSeedFixnumLocal places a fixnum item in boot-frame local words 4,5.
func lispSeedFixnumLocal(m *core.Machine, _ *emulator.Asm) error {
	m.Mem().Poke(emulator.VAFrames+4, emulator.TagFixnum)
	m.Mem().Poke(emulator.VAFrames+5, 21)
	return nil
}

// lispSeedConsLocal places a cons item in local words 4,5 whose cell holds
// (7 . NIL).
func lispSeedConsLocal(m *core.Machine, _ *emulator.Asm) error {
	const cell = emulator.VAHeap + 0x300
	m.Mem().Poke(emulator.VAFrames+4, emulator.TagCons)
	m.Mem().Poke(emulator.VAFrames+5, cell)
	m.Mem().Poke(cell, emulator.TagFixnum)
	m.Mem().Poke(cell+1, 7)
	m.Mem().Poke(cell+2, emulator.TagNil)
	m.Mem().Poke(cell+3, 0)
	return nil
}

// smalltalkNoopWorld installs a SmallInteger class whose selector 3 maps to
// the macroprogram's "noop" method.
func smalltalkNoopWorld(m *core.Machine, a *emulator.Asm) error {
	pc, err := a.LabelPC("noop")
	if err != nil {
		return err
	}
	mem := m.Mem()
	const class = emulator.VAHeap + 0x000
	const dict = emulator.VAHeap + 0x010
	mem.Poke(emulator.SIClassSlot, class)
	mem.Poke(class, 0)
	mem.Poke(class+1, dict)
	mem.Poke(class+2, 1)
	mem.Poke(dict, 3)
	mem.Poke(dict+1, 320)
	emulator.DefineFunc(m, 320, pc, 0)
	return nil
}
