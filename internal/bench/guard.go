package bench

import "fmt"

// The bench guard bounds the cost of the observability layer against the
// committed baseline (BENCH_SIM.json, recorded by PR 1 before the layer
// existed):
//
//   - metrics-off: the hot loop with a detached recorder — one nil check
//     per cycle — must stay within GuardThresholds.MetricsOff of the
//     baseline;
//   - metrics-on: the instrumented path must stay within
//     GuardThresholds.MetricsOn of the same run's predecoded path;
//   - fleet-metrics-on: an instrumented fleet (every session created with
//     Spec.Metrics) must stay within GuardThresholds.FleetMetricsOn of the
//     same run's uninstrumented fleet at each session count;
//   - prof-off / prof-on: the same pair of bounds for the
//     microarchitectural profiler (core.Profiler) — detached it is one nil
//     check per cycle in the same step the recorder hooks, attached it
//     charges every cycle to its microaddress.
//
// CI hosts differ from the host that recorded the baseline, so the
// metrics-off check compares the *predecode speedup* (predecoded over
// reference cycles/sec) rather than absolute throughput: both paths run on
// the same host in the same process, so host speed divides out, while a
// regression that slows only the hot loop (the recorder hook lives in the
// shared step, but predecode-relative costs surface here) drags the ratio
// down. The metrics-on check needs no normalization at all — both sides
// come from the current run.

// GuardThresholds are allowed fractional slowdowns (0.03 = 3%), plus the
// translated path's required same-run speedup.
type GuardThresholds struct {
	MetricsOff     float64 // predecode-speedup regression vs baseline
	MetricsOn      float64 // instrumented vs predecoded, current run
	FleetMetricsOn float64 // instrumented fleet vs uninstrumented, current run
	// TranslatedMin is the minimum translated-over-predecoded speedup, and
	// TranslatedWorkloads how many workloads must reach it. Both sides come
	// from the same interleaved run, so host speed divides out; the check is
	// aggregate (N-of-M) because not every §7 workload is translation-
	// friendly — the emulator's microcode runs are IFU-dispatch-bounded.
	TranslatedMin       float64
	TranslatedWorkloads int
	// ProfOff bounds the detached-profiler cost: like the recorder, the
	// profiler hook is one nil check in the shared step, so the check uses
	// the same observable as metrics-off (predecode speedup vs baseline)
	// under its own budget — tightening either budget trips independently.
	// ProfOn bounds the attached profiler (profiled vs predecoded,
	// current run).
	ProfOff float64
	ProfOn  float64
}

// DefaultGuardThresholds are the budgets the CI job enforces.
//
// MetricsOn was 0.15 until the superblock-translation PR: the recorder's
// absolute per-cycle cost did not change, but that PR removed per-blit
// predecode invalidation and so sped up the predecoded denominator —
// BitBlt's relative overhead rose from ~12% to ~17% with an unchanged
// recorder. 0.20 re-centers the budget on the faster base; a recorder
// regression still trips it.
var DefaultGuardThresholds = GuardThresholds{
	MetricsOff: 0.03, MetricsOn: 0.20, FleetMetricsOn: 0.15,
	TranslatedMin: 1.5, TranslatedWorkloads: 2,
	ProfOff: 0.03, ProfOn: 0.15,
}

// GuardCheck is one pass/fail comparison.
type GuardCheck struct {
	Workload string
	Check    string  // "metrics-off", "metrics-on", "translated", "prof-off", or "prof-on"
	Baseline float64 // reference value the current one is held to
	Current  float64
	Limit    float64 // minimum acceptable Current
	OK       bool
}

// String renders the check as a one-line pass/fail report row.
func (c GuardCheck) String() string {
	verdict := "ok  "
	if !c.OK {
		verdict = "FAIL"
	}
	return fmt.Sprintf("%s %-8s %-11s current %6.3f  baseline %6.3f  limit %6.3f",
		verdict, c.Workload, c.Check, c.Current, c.Baseline, c.Limit)
}

// Guard compares a current report against the baseline. It returns every
// check performed and whether all passed.
//
// Noise floor: host-performance numbers on shared CI machines jitter by a
// few percent run to run, which is why the thresholds are ratios over
// paired same-process measurements rather than absolute cycles/sec.
func Guard(baseline, current *HostReport, th GuardThresholds) ([]GuardCheck, bool) {
	var checks []GuardCheck
	ok := true
	for _, w := range HostWorkloads() {
		// metrics-off: current predecode speedup vs the baseline's.
		if base, cur := baseline.Speedup[w.ID], current.Speedup[w.ID]; base > 0 && cur > 0 {
			limit := base * (1 - th.MetricsOff)
			c := GuardCheck{
				Workload: w.ID, Check: "metrics-off",
				Baseline: base, Current: cur, Limit: limit, OK: cur >= limit,
			}
			checks = append(checks, c)
			ok = ok && c.OK
		}
		// prof-off: the detached-profiler hook shares the recorder's step, so
		// it is held to the same observable under its own budget.
		if base, cur := baseline.Speedup[w.ID], current.Speedup[w.ID]; base > 0 && cur > 0 && th.ProfOff > 0 {
			limit := base * (1 - th.ProfOff)
			c := GuardCheck{
				Workload: w.ID, Check: "prof-off",
				Baseline: base, Current: cur, Limit: limit, OK: cur >= limit,
			}
			checks = append(checks, c)
			ok = ok && c.OK
		}
		// metrics-on: instrumented throughput vs this run's predecoded.
		fast := current.Result(w.ID, PathPredecoded)
		inst := current.Result(w.ID, PathInstrumented)
		if fast != nil && inst != nil && fast.CyclesPerSec > 0 {
			rel := inst.CyclesPerSec / fast.CyclesPerSec
			limit := 1 - th.MetricsOn
			c := GuardCheck{
				Workload: w.ID, Check: "metrics-on",
				Baseline: 1, Current: rel, Limit: limit, OK: rel >= limit,
			}
			checks = append(checks, c)
			ok = ok && c.OK
		}
		// prof-on: profiled throughput vs this run's predecoded. Skipped for
		// reports recorded before the profiled path existed.
		prof := current.Result(w.ID, PathProfiled)
		if fast != nil && prof != nil && fast.CyclesPerSec > 0 && th.ProfOn > 0 {
			rel := prof.CyclesPerSec / fast.CyclesPerSec
			limit := 1 - th.ProfOn
			c := GuardCheck{
				Workload: w.ID, Check: "prof-on",
				Baseline: 1, Current: rel, Limit: limit, OK: rel >= limit,
			}
			checks = append(checks, c)
			ok = ok && c.OK
		}
	}
	// translated: the superblock path must beat this run's predecoded path
	// by TranslatedMin on at least TranslatedWorkloads workloads. The check
	// is aggregate — per-workload rows are informational (OK regardless of
	// their own ratio: no single workload is required to hit the target, so
	// a sub-target row is not a failure and must not read like one). Skipped
	// entirely for reports recorded before the translated path existed.
	if len(current.Translation) > 0 && th.TranslatedMin > 0 {
		passing := 0
		for _, w := range HostWorkloads() {
			ratio, measured := current.Translation[w.ID]
			if !measured {
				continue
			}
			if ratio >= th.TranslatedMin {
				passing++
			}
			checks = append(checks, GuardCheck{
				Workload: w.ID, Check: "translated",
				Baseline: 1, Current: ratio, Limit: th.TranslatedMin, OK: true,
			})
		}
		c := GuardCheck{
			Workload: "any-2", Check: "translated",
			Baseline: float64(len(current.Translation)), Current: float64(passing),
			Limit: float64(th.TranslatedWorkloads), OK: passing >= th.TranslatedWorkloads,
		}
		checks = append(checks, c)
		ok = ok && c.OK
	}
	// fleet-metrics-on: instrumented fleet throughput vs this run's
	// uninstrumented fleet, per session count. Skipped for points measured
	// without the instrumented variant (or reports with no fleet section) —
	// simbench only populates MetricsCyclesPerSec when -fleet ran.
	for _, p := range current.Fleet {
		if p.MetricsCyclesPerSec <= 0 || p.CyclesPerSec <= 0 {
			continue
		}
		rel := p.MetricsCyclesPerSec / p.CyclesPerSec
		limit := 1 - th.FleetMetricsOn
		c := GuardCheck{
			Workload: fmt.Sprintf("fleet-%d", p.Sessions), Check: "metrics-on",
			Baseline: 1, Current: rel, Limit: limit, OK: rel >= limit,
		}
		checks = append(checks, c)
		ok = ok && c.OK
	}
	return checks, ok
}
