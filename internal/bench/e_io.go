package bench

import (
	"fmt"

	"dorado/internal/core"
	"dorado/internal/device"
	"dorado/internal/masm"
	"dorado/internal/microcode"
	"dorado/internal/trace"
)

// ioMachine builds a machine whose task 0 runs an endless counting loop
// (standing in for the emulator) and loads the given microcode program.
func ioMachine(b *masm.Builder, opts core.Options) (*core.Machine, *masm.Program, error) {
	p, err := b.Assemble()
	if err != nil {
		return nil, nil, err
	}
	m, err := core.New(core.Config{Options: opts})
	if err != nil {
		return nil, nil, err
	}
	m.Load(&p.Words)
	m.Start(p.MustEntry("emu"))
	return m, p, nil
}

// emuLoop emits the background emulator: RM0 counts cycles it gets.
func emuLoop(b *masm.Builder) {
	b.EmitAt("emu", masm.I{ALU: microcode.ALUAplus1, A: microcode.ASelRM, R: 0,
		LC: microcode.LCLoadRM, Flow: masm.Goto("emu")})
}

// E4DiskUtilization reproduces: "the microcode for the disk takes three
// cycles to transfer two words ...; thus the 10 megabit/sec disk consumes
// 5% of the processor" (§7).
func E4DiskUtilization() Table {
	const title = "Disk at 10 Mbit/s: processor share"
	const claim = `"the 10 megabit/sec disk consumes 5% of the processor"; 3 cycles per 2 words (§7)`
	b := masm.NewBuilder()
	emuLoop(b)
	// The 3-cycles-per-2-words idiom: word 1 via T, word 2 straight from
	// IODATA to memory (§5.8).
	b.EmitAt("disk", masm.I{FF: microcode.FFInput, ALU: microcode.ALUB, LC: microcode.LCLoadT})
	b.Emit(masm.I{A: microcode.ASelStore, R: 1, B: microcode.BSelT,
		ALU: microcode.ALUAplus1, LC: microcode.LCLoadRM})
	b.Emit(masm.I{A: microcode.ASelStore, R: 1, FF: microcode.FFInput,
		ALU: microcode.ALUAplus1, LC: microcode.LCLoadRM,
		Block: true, Flow: masm.Goto("disk")})
	m, p, err := ioMachine(b, core.Options{})
	if err != nil {
		return fail("E4", title, err)
	}
	// 16 bits / 10 Mbit/s = 1.6 µs ≈ 27 cycles per word.
	disk := device.NewWordSource(11, 27, 2)
	if err := m.Attach(disk); err != nil {
		return fail("E4", title, err)
	}
	m.SetIOAddress(11, 11)
	m.SetTPC(11, p.MustEntry("disk"))
	m.SetRM(1, 0x6000) // transfer buffer
	const run = 400_000
	m.Run(run)
	st := m.Stats()
	util := st.Utilization(11)
	delivered := trace.MBits(float64(disk.Consumed())*16, m.Cycle())
	pass := util > 0.04 && util < 0.08 && disk.Overruns() == 0 && delivered > 9
	return Table{
		ID: "E4", Title: title, Claim: claim,
		Rows: []Row{
			{"processor share", "5%", pct(util), fmt.Sprintf("%d of %d cycles", st.TaskCycles[11], st.Cycles)},
			{"delivered rate", "10 Mbit/s", f1(delivered) + " Mbit/s", fmt.Sprintf("%d words, %d overruns", disk.Consumed(), disk.Overruns())},
			{"µinst per 2 words", "3", "3", "by construction; see the microcode"},
		},
		Pass: pass,
	}
}

// E5FastIO reproduces: "The fast I/O microcode for the display takes only
// two instructions to transfer a 16 word block ... can consume the
// available memory bandwidth for I/O (530 megabits/sec) using only one
// quarter of the available microcycles" (§7, §6.2.1).
func E5FastIO() Table {
	const title = "Fast I/O display at full storage bandwidth"
	const claim = `"530 megabits/sec using only one quarter of the available microcycles"; 2 µinst per 16-word block (§7)`
	b := masm.NewBuilder()
	emuLoop(b)
	// Two instructions per block: command the block (Output) while bumping
	// the block pointer, then block.
	b.EmitAt("disp", masm.I{A: microcode.ASelT, B: microcode.BSelRM, R: 2,
		ALU: microcode.ALUAplusB, LC: microcode.LCLoadRM, FF: microcode.FFOutput})
	b.Emit(masm.I{Block: true, Flow: masm.Goto("disp")})
	m, p, err := ioMachine(b, core.Options{})
	if err != nil {
		return fail("E5", title, err)
	}
	disp := device.NewDisplay(13, m.Mem(), 8, 4) // one block per 8 cycles: full bandwidth
	disp.SetBase(0x20000)
	if err := m.Attach(disp); err != nil {
		return fail("E5", title, err)
	}
	m.SetIOAddress(13, 13)
	m.SetTPC(13, p.MustEntry("disp"))
	m.SetT(13, 16) // block stride lives in the display task's T
	const run = 200_000
	m.Run(run)
	st := m.Stats()
	util := st.Utilization(13)
	bw := trace.MBits(float64(disp.BlocksMoved())*16*16, m.Cycle())
	pass := bw > 480 && bw < 560 && util > 0.2 && util < 0.3 && disp.Underruns() == 0
	return Table{
		ID: "E5", Title: title, Claim: claim,
		Rows: []Row{
			{"I/O bandwidth", "530 Mbit/s", f1(bw) + " Mbit/s", fmt.Sprintf("%d blocks, %d underruns", disp.BlocksMoved(), disp.Underruns())},
			{"processor share", "25%", pct(util), "2 µinst per 8-cycle block"},
		},
		Pass: pass,
	}
}

// E6SlowIO reproduces: "The data bus can transfer a word per cycle, or 265
// megabits/second, and both the memory reference and the I/O transfer can
// be specified in a single instruction" (§5.8).
func E6SlowIO() Table {
	const title = "Slow I/O peak rate"
	const claim = `"a word per cycle, or 265 megabits/second ... memory reference and I/O transfer in a single instruction" (§5.8)`
	b := masm.NewBuilder()
	emuLoop(b)
	// One instruction per word: IODATA drives B, B goes to memory, the
	// pointer increments, and the loop closes on COUNT — all in one word.
	b.EmitAt("burst", masm.I{A: microcode.ASelStore, R: 1, FF: microcode.FFInput,
		ALU: microcode.ALUAplus1, LC: microcode.LCLoadRM,
		Flow: masm.Branch(microcode.CondCountNZ, "burst.done", "burst")})
	b.EmitAt("burst.done", masm.I{Block: true, Flow: masm.Goto("burst")})
	m, p, err := ioMachine(b, core.Options{})
	if err != nil {
		return fail("E6", title, err)
	}
	lb := device.NewLoopback(9)
	if err := m.Attach(lb); err != nil {
		return fail("E6", title, err)
	}
	m.SetIOAddress(9, 9)
	m.SetTPC(9, p.MustEntry("burst"))
	m.SetRM(1, 0x6000)
	const words = 2000
	m.SetCount(words)
	// The paper's rate assumes the cache absorbs the stores; warm the lines.
	for a := uint32(0x6000); a < 0x6000+words+16; a += 16 {
		m.Mem().Warm(a)
	}
	lb.Arm(true)
	start := m.Cycle()
	for m.Cycle() < 100_000 {
		m.Step()
		if in, _ := lb.Words(); in >= words {
			break
		}
	}
	lb.Arm(false)
	in, _ := lb.Words()
	elapsed := m.Cycle() - start
	bw := trace.MBits(float64(in)*16, elapsed)
	perWord := float64(elapsed) / float64(in)
	pass := bw > 220 && bw <= 270
	return Table{
		ID: "E6", Title: title, Claim: claim,
		Rows: []Row{
			{"IODATA rate", "265 Mbit/s", f1(bw) + " Mbit/s", fmt.Sprintf("%d words in %d cycles", in, elapsed)},
			{"cycles/word", "1", f2(perWord), "store + input + pointer + loop in one instruction"},
		},
		Pass: pass,
	}
}

// E8GrainAblation reproduces §6.2.1's design argument: with the 2-cycle
// grain, full-bandwidth fast I/O needs 25% of the processor; the simpler
// explicit-notify design raises the grain to 3 cycles and the share to
// 37.5%.
func E8GrainAblation() Table {
	const title = "Task-allocation grain: 2-cycle vs 3-cycle"
	const claim = `"A two cycle grain thus allows the full memory bandwidth ... using only 25% of the processor ... [with explicit notification] 37.5% of the processor would be needed" (§6.2.1)`
	run := func(explicit bool) (util float64, bw float64, err error) {
		b := masm.NewBuilder()
		emuLoop(b)
		if explicit {
			// Grain 3: the acknowledgement occupies the first instruction
			// and the task cannot block before its third.
			b.EmitAt("disp", masm.I{A: microcode.ASelT, B: microcode.BSelRM, R: 2,
				ALU: microcode.ALUAplusB, LC: microcode.LCLoadRM, FF: microcode.FFOutput})
			b.Emit(masm.I{FF: microcode.FFIOAttenAck})
			b.Emit(masm.I{Block: true, Flow: masm.Goto("disp")})
		} else {
			b.EmitAt("disp", masm.I{A: microcode.ASelT, B: microcode.BSelRM, R: 2,
				ALU: microcode.ALUAplusB, LC: microcode.LCLoadRM, FF: microcode.FFOutput})
			b.Emit(masm.I{Block: true, Flow: masm.Goto("disp")})
		}
		m, p, err := ioMachine(b, core.Options{ExplicitNotify: explicit})
		if err != nil {
			return 0, 0, err
		}
		disp := device.NewDisplay(13, m.Mem(), 8, 4)
		disp.SetBase(0x20000)
		if err := m.Attach(disp); err != nil {
			return 0, 0, err
		}
		m.SetIOAddress(13, 13)
		m.SetTPC(13, p.MustEntry("disp"))
		m.SetT(13, 16)
		m.Run(200_000)
		st := m.Stats()
		return st.Utilization(13), trace.MBits(float64(disp.BlocksMoved())*16*16, m.Cycle()), nil
	}
	u2, bw2, err := run(false)
	if err != nil {
		return fail("E8", title, err)
	}
	u3, bw3, err := run(true)
	if err != nil {
		return fail("E8", title, err)
	}
	pass := u2 > 0.2 && u2 < 0.3 && u3 > 0.32 && u3 < 0.45 && bw2 > 480 && bw3 > 480
	return Table{
		ID: "E8", Title: title, Claim: claim,
		Rows: []Row{
			{"grain 2 (NEXT bus)", "25%", pct(u2), f1(bw2) + " Mbit/s delivered"},
			{"grain 3 (explicit notify)", "37.5%", pct(u3), f1(bw3) + " Mbit/s delivered"},
		},
		Pass: pass,
	}
}
