package bench

import (
	"fmt"

	"dorado/internal/core"
	"dorado/internal/device"
	"dorado/internal/masm"
	"dorado/internal/microcode"
)

// E9TaskSwitch reproduces the task-pipeline timing of §5.2–§5.4/§6.2.1:
// a wakeup reaches the NEXT bus one cycle later and the task runs one cycle
// after that (two cycles total), and the switch itself steals nothing from
// the preempted emulator beyond the service instructions.
func E9TaskSwitch() Table {
	const title = "Task switch latency and overhead"
	const claim = `"it takes a minimum of two cycles from the time a wakeup changes to the time this change can affect the running task"; switching is free of overhead (§4, §6.2.1)`
	build := func(withDevice bool, period int, cycles uint64) (emuCount uint16, services uint16, lats []uint64, err error) {
		b := masm.NewBuilder()
		emuLoop(b)
		b.EmitAt("svc", masm.I{ALU: microcode.ALUAplus1, A: microcode.ASelRM, R: 1, LC: microcode.LCLoadRM})
		b.Emit(masm.I{Block: true, Flow: masm.Goto("svc")})
		m, p, err := ioMachine(b, core.Options{})
		if err != nil {
			return 0, 0, nil, err
		}
		var pulse *device.Pulse
		if withDevice {
			pulse = device.NewPulse(10, period)
			if err := m.Attach(pulse); err != nil {
				return 0, 0, nil, err
			}
			m.SetTPC(10, p.MustEntry("svc"))
		}
		m.Run(cycles)
		if pulse != nil {
			lats = pulse.Latencies()
		}
		return m.RM(0), m.RM(1), lats, nil
	}
	const cycles = 10_000
	const period = 100
	quiet, _, _, err := build(false, 0, cycles)
	if err != nil {
		return fail("E9", title, err)
	}
	busy, services, lats, err := build(true, period, cycles)
	if err != nil {
		return fail("E9", title, err)
	}
	// NEXT shows the task number one cycle after the wakeup.
	nextLatOK := len(lats) > 0
	for _, l := range lats {
		if l != 1 {
			nextLatOK = false
		}
	}
	overhead := float64(quiet-busy) / float64(services) // emulator cycles lost per service
	// Exactly the two service instructions per wakeup (a wakeup straddling
	// the measurement end can shave a fraction).
	pass := nextLatOK && services > 0 && overhead >= 1.9 && overhead <= 2.05
	return Table{
		ID: "E9", Title: title, Claim: claim,
		Rows: []Row{
			{"wakeup → NEXT", "1 cycle", "1 cycle", fmt.Sprintf("%d wakeups observed", len(lats))},
			{"wakeup → first µinst", "2 cycles", "2 cycles", "validated by core's pipeline tests"},
			{"switch overhead", "0 cycles", f1(overhead - 2), fmt.Sprintf("emulator lost %.0f cycles per 2-µinst service", overhead)},
		},
		Pass: pass,
	}
}

// E13MemoryLatency reproduces the memory-system timing the processor
// design assumes (§3, §5.7, §6.2.1).
func E13MemoryLatency() Table {
	const title = "Memory timing: cache hit, miss, storage rate"
	const claim = `cache "has a latency of two cycles, and can deliver a word every cycle" (§3); hit/miss gap "more than an order of magnitude" (§5.7); storage ref "one every eight cycles" (§6.2.1)`
	m, err := core.New(core.Config{})
	if err != nil {
		return fail("E13", title, err)
	}
	mem := m.Mem()

	// Hit latency: warm a line, fetch, count cycles to ready.
	mem.Warm(64)
	mem.StartRead(0, 64, 1000)
	hit := 0
	for !mem.MDReady(0, uint64(1000+hit)) {
		hit++
	}
	mem.MD(0, uint64(1000+hit))

	// Miss latency.
	mem.StartRead(0, 0x9000, 2000)
	miss := 0
	for !mem.MDReady(0, uint64(2000+miss)) {
		miss++
	}
	mem.MD(0, uint64(2000+miss))

	// Storage spacing: after one miss, the next miss cannot start for 8 cycles.
	mem.StartRead(1, 0xA000, 3000)
	spacing := 0
	for !mem.CanRead(2, 0xB000, uint64(3000+spacing)) {
		spacing++
	}

	// Hit throughput: one reference per cycle across tasks.
	throughputOK := true
	for i := 0; i < 4; i++ {
		va := uint32(64 + i)
		if !mem.StartRead(i+3, va, uint64(4000+i)) {
			throughputOK = false
		}
	}

	ratio := float64(miss) / float64(hit)
	pass := hit == 2 && miss >= 20 && spacing == 8 && ratio > 10 && throughputOK
	tp := "1/cycle"
	if !throughputOK {
		tp = "below 1/cycle"
	}
	return Table{
		ID: "E13", Title: title, Claim: claim,
		Rows: []Row{
			{"cache hit latency", "2 cycles", fmt.Sprintf("%d cycles", hit), ""},
			{"cache miss latency", "(best:worst > 10×)", fmt.Sprintf("%d cycles", miss), fmt.Sprintf("ratio %.1f×", ratio)},
			{"storage ref spacing", "8 cycles", fmt.Sprintf("%d cycles", spacing), "main storage RAM cycle"},
			{"hit throughput", "1 ref/cycle", tp, "fully segmented pipeline"},
		},
		Pass: pass,
	}
}
