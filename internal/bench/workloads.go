package bench

import (
	"dorado/internal/bitblt"
	"dorado/internal/core"
	"dorado/internal/device"
	"dorado/internal/emulator"
	"dorado/internal/masm"
	"dorado/internal/microcode"
)

// This file holds the machine-level builders for the §7 workload families.
// Each returns a fully set up machine — microcode loaded, devices attached,
// task 0 started — that the caller then drives: the differential tests run
// both interpreter paths to completion and compare (diff_test.go), the
// host benchmark times RunCycles (host.go), and the checkpoint tests run,
// snapshot, restore and resume (snapshot_test.go).

// Workload is one §7 workload family as a runnable machine.
type Workload struct {
	ID    string
	Name  string
	Build func(cfg core.Config) (*core.Machine, error)
}

// Workloads returns the §7 families: the Mesa emulator mix, the disk
// transfer idiom, fast I/O at full memory bandwidth, slow I/O through
// IODATA, and BitBlt.
func Workloads() []Workload {
	return []Workload{
		{ID: "emulator", Name: "Mesa emulator mix (IFU dispatch, frame load/store, branch)", Build: BuildEmulatorMachine},
		{ID: "disk", Name: "Disk transfer, 3 cycles per 2 words (§7)", Build: BuildDiskMachine},
		{ID: "fastio", Name: "Fast I/O display at full memory bandwidth (§7)", Build: BuildFastIOMachine},
		{ID: "slowio", Name: "Slow I/O loopback through IODATA (§7)", Build: BuildSlowIOMachine},
		{ID: "bitblt", Name: "BitBlt merge, src/dst/filter (§7)", Build: BuildBitBltMachine},
	}
}

// BuildEmulatorMachine boots the Mesa emulator on an endless
// macroinstruction loop: dispatch, operand fetch, frame load/store, and a
// taken conditional jump every iteration — the steady-state emulator mix.
func BuildEmulatorMachine(cfg core.Config) (*core.Machine, error) {
	m, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	mesa, err := emulator.BuildMesa()
	if err != nil {
		return nil, err
	}
	a := emulator.NewAsm(mesa)
	a.OpB("LIB", 40)
	a.OpB("SL", 4)
	a.Label("loop")
	a.OpB("LL", 4)
	a.Op("DUP")
	a.OpB("SL", 4)
	a.OpL("JNZ", "loop") // always taken: the loop never exits
	if err := a.Install(m); err != nil {
		return nil, err
	}
	if err := mesa.InstallOn(m); err != nil {
		return nil, err
	}
	return m, nil
}

// diskProgram assembles the E4 microcode: the counting emulator plus the
// 3-cycles-per-2-words disk loop. Split from BuildDiskMachine so profiling
// runs can reach the program's symbol table.
func diskProgram() (*masm.Program, error) {
	b := masm.NewBuilder()
	emuLoop(b)
	b.EmitAt("disk", masm.I{FF: microcode.FFInput, ALU: microcode.ALUB, LC: microcode.LCLoadT})
	b.Emit(masm.I{A: microcode.ASelStore, R: 1, B: microcode.BSelT,
		ALU: microcode.ALUAplus1, LC: microcode.LCLoadRM})
	b.Emit(masm.I{A: microcode.ASelStore, R: 1, FF: microcode.FFInput,
		ALU: microcode.ALUAplus1, LC: microcode.LCLoadRM,
		Block: true, Flow: masm.Goto("disk")})
	return b.Assemble()
}

// BuildDiskMachine is the E4 machine: the counting emulator in task 0 plus
// the 3-cycles-per-2-words disk microcode woken by a word source.
func BuildDiskMachine(cfg core.Config) (*core.Machine, error) {
	p, err := diskProgram()
	if err != nil {
		return nil, err
	}
	m, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	m.Load(&p.Words)
	m.Start(p.MustEntry("emu"))
	if err := m.Attach(device.NewWordSource(11, 27, 2)); err != nil {
		return nil, err
	}
	m.SetIOAddress(11, 11)
	m.SetTPC(11, p.MustEntry("disk"))
	m.SetRM(1, 0x6000)
	return m, nil
}

// fastioProgram assembles the E5 microcode: the counting emulator plus the
// two-instruction display loop.
func fastioProgram() (*masm.Program, error) {
	b := masm.NewBuilder()
	emuLoop(b)
	b.EmitAt("disp", masm.I{A: microcode.ASelT, B: microcode.BSelRM, R: 2,
		ALU: microcode.ALUAplusB, LC: microcode.LCLoadRM, FF: microcode.FFOutput})
	b.Emit(masm.I{Block: true, Flow: masm.Goto("disp")})
	return b.Assemble()
}

// BuildFastIOMachine is the E5 machine: the display consuming full memory
// bandwidth with two microinstructions per 16-word block.
func BuildFastIOMachine(cfg core.Config) (*core.Machine, error) {
	p, err := fastioProgram()
	if err != nil {
		return nil, err
	}
	m, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	m.Load(&p.Words)
	m.Start(p.MustEntry("emu"))
	disp := device.NewDisplay(13, m.Mem(), 8, 4)
	disp.SetBase(0x20000)
	if err := m.Attach(disp); err != nil {
		return nil, err
	}
	m.SetIOAddress(13, 13)
	m.SetTPC(13, p.MustEntry("disp"))
	m.SetT(13, 16)
	return m, nil
}

// BuildSlowIOMachine is the E6 machine: loopback device, one word per wakeup
// through IODATA, loop closed on COUNT.
func BuildSlowIOMachine(cfg core.Config) (*core.Machine, error) {
	b := masm.NewBuilder()
	emuLoop(b)
	b.EmitAt("burst", masm.I{A: microcode.ASelStore, R: 1, FF: microcode.FFInput,
		ALU: microcode.ALUAplus1, LC: microcode.LCLoadRM,
		Flow: masm.Branch(microcode.CondCountNZ, "burst.done", "burst")})
	b.EmitAt("burst.done", masm.I{Block: true, Flow: masm.Goto("burst")})
	p, err := b.Assemble()
	if err != nil {
		return nil, err
	}
	m, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	m.Load(&p.Words)
	m.Start(p.MustEntry("emu"))
	lb := device.NewLoopback(9)
	if err := m.Attach(lb); err != nil {
		return nil, err
	}
	m.SetIOAddress(9, 9)
	m.SetTPC(9, p.MustEntry("burst"))
	m.SetRM(1, 0x6000)
	m.SetCount(1000)
	for a := uint32(0x6000); a < 0x6000+1016; a += 16 {
		m.Mem().Warm(a)
	}
	lb.Arm(true)
	return m, nil
}

// bitbltParams is the screen-scale merge every BitBlt machine runs: the
// paper's "function of the source object, the destination object and a
// filter", heavy on the shifter/masker path.
var bitbltParams = bitblt.Params{
	Src: 0x10000, Dst: 0x40000, WidthWords: 32, Height: 24,
	SrcPitch: 32, DstPitch: 32, Op: bitblt.Merge, Filter: 0xAAAA,
}

// BuildBitBltMachine is the E3 machine set up mid-call: one merge blit
// started but not run. The machine halts when the blit completes.
func BuildBitBltMachine(cfg core.Config) (*core.Machine, error) {
	ps, err := bitblt.Build()
	if err != nil {
		return nil, err
	}
	m, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	p := bitbltParams
	for a := p.Src; a < p.Src+uint32(p.SrcPitch*p.Height); a++ {
		m.Mem().Poke(a, uint16(a*2654435761))
	}
	if err := ps.Setup(m, p); err != nil {
		return nil, err
	}
	return m, nil
}
