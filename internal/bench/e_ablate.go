package bench

import (
	"fmt"

	"dorado/internal/core"
	"dorado/internal/device"
	"dorado/internal/emulator"
	"dorado/internal/masm"
	"dorado/internal/microcode"
)

// mesaWorkload emits a representative Mesa byte program: a loop over
// locals, arithmetic, and field extraction — the dependency-dense code the
// bypass and branch arguments are about.
func mesaWorkload(a *emulator.Asm) {
	a.OpB("LIB", 40).OpB("SL", 4) // i = 40
	a.OpB("LIB", 0).OpB("SL", 5)  // acc = 0
	a.Label("loop")
	a.OpB("LL", 5).OpB("LL", 4).Op("ADD").OpB("SL", 5)
	a.OpW("LIW", 0x0100).OpW("RF", emulator.ExtractCtl(2, 6)).Op("DROP")
	a.OpB("LL", 4).OpW("LIW", 1).Op("SUB").OpB("SL", 4)
	a.OpB("LL", 4).OpL("JNZ", "loop")
	a.OpB("LL", 5)
	a.Op("HALT")
}

// runMesaWorkload runs the workload on a machine built from the given
// microcode program and options; it returns (cycles, result on stack).
func runMesaWorkload(micro *masm.Program, table *emulator.Program, opts core.Options) (uint64, uint16, error) {
	m, err := core.New(core.Config{Options: opts})
	if err != nil {
		return 0, 0, err
	}
	a := emulator.NewAsm(table)
	mesaWorkload(a)
	if err := a.Install(m); err != nil {
		return 0, 0, err
	}
	if err := table.InstallOn(m); err != nil {
		return 0, 0, err
	}
	if micro != nil {
		m.Load(&micro.Words) // replacement microcode (e.g. padded)
	}
	if !m.Run(10_000_000) {
		return 0, 0, fmt.Errorf("bench: workload did not halt")
	}
	return m.Cycle(), m.Stack(1), nil
}

// E10BypassAblation reproduces §5.6: Model 0's missing bypasses forced
// NOP padding, "a significant loss of performance" — and unpadded code on
// such a machine has "a number of subtle bugs" (wrong answers).
func E10BypassAblation() Table {
	const title = "Data bypassing: Model 1 vs Model 0"
	const claim = `"In the Model 0 Dorado, we omitted bypassing logic in a few places ... The result was a number of subtle bugs and a significant loss of performance" (§5.6)`
	table, err := emulator.BuildMesa()
	if err != nil {
		return fail("E10", title, err)
	}
	paddedTable, pads, err := emulator.BuildMesaPadded()
	if err != nil {
		return fail("E10", title, err)
	}

	baseCycles, baseResult, err := runMesaWorkload(nil, table, core.Options{})
	if err != nil {
		return fail("E10", title, err)
	}
	padCycles, padResult, err := runMesaWorkload(nil, paddedTable, core.Options{})
	if err != nil {
		return fail("E10", title, err)
	}
	// Unpadded microcode on the bypass-free machine: wrong answer (the
	// "subtle bugs"). It may also wander — cap and compare results only.
	_, buggyResult, buggyErr := runMesaWorkload(nil, table, core.Options{NoBypass: true})

	slowdown := float64(padCycles)/float64(baseCycles) - 1
	buggy := buggyErr != nil || buggyResult != baseResult
	pass := padResult == baseResult && slowdown > 0.02 && buggy
	buggyNote := "wrong result (did not halt)"
	if buggyErr == nil {
		buggyNote = fmt.Sprintf("wrong result: %d vs %d", buggyResult, baseResult)
	}
	if !buggy {
		buggyNote = "unexpectedly correct"
	}
	return Table{
		ID: "E10", Title: title, Claim: claim,
		Rows: []Row{
			{"bypassed (Model 1)", "baseline", fmt.Sprintf("%d cycles", baseCycles), fmt.Sprintf("result %d", baseResult)},
			{"padded for no bypass", "significant loss", fmt.Sprintf("%d cycles (+%s)", padCycles, pct(slowdown)), fmt.Sprintf("%d NOPs inserted into the emulator", pads)},
			{"unpadded on Model 0", "subtle bugs", "incorrect", buggyNote},
		},
		Pass: pass,
	}
}

// E11BranchAblation reproduces §5.5's branch argument: folding the
// condition into the low NEXTPC bit costs zero cycles, where the
// conventional design inserts one dead cycle per conditional branch.
func E11BranchAblation() Table {
	const title = "Conditional branch cost: late-select vs delayed"
	const claim = `branches use the late-arriving condition "so the late arriving branch condition does not increase the total cycle time"; the alternative "inserts ... an extra cycle" (§5.5)`
	table, err := emulator.BuildMesa()
	if err != nil {
		return fail("E11", title, err)
	}
	baseCycles, baseResult, err := runMesaWorkload(nil, table, core.Options{})
	if err != nil {
		return fail("E11", title, err)
	}
	delCycles, delResult, err := runMesaWorkload(nil, table, core.Options{DelayedBranch: true})
	if err != nil {
		return fail("E11", title, err)
	}
	slowdown := float64(delCycles)/float64(baseCycles) - 1
	pass := baseResult == delResult && delCycles > baseCycles && slowdown > 0.01
	return Table{
		ID: "E11", Title: title, Claim: claim,
		Rows: []Row{
			{"late condition select", "0 extra cycles", fmt.Sprintf("%d cycles", baseCycles), "condition ORed into NEXTPC low bit"},
			{"delayed-branch design", "+1 cycle/branch", fmt.Sprintf("%d cycles (+%s)", delCycles, pct(slowdown)), "same result, dead cycle per branch"},
		},
		Pass: pass,
	}
}

// E12HoldVsAlternatives reproduces §5.7: Hold vs the two rejected designs
// (fixed worst-case wait; explicit polling), including the concurrency
// argument — held cycles are harvested by other tasks, polled ones are not.
func E12HoldVsAlternatives() Table {
	const title = "Memory synchronization: Hold vs fixed-wait vs polling"
	const claim = `"Two simple techniques are to wait a fixed (unfortunately, maximum) time ... or to explicitly poll the memory ... Neither is satisfactory" (§5.7)`

	// Workload: 256 fetch+use pairs over a warm region (hit-dominated),
	// plus 64 misses (stride past the cache).
	build := func(poll bool) *masm.Builder {
		b := masm.NewBuilder()
		b.EmitAt("start", masm.I{Const: 0x00FF, HasConst: true, ALU: microcode.ALUB, FF: 0, LC: microcode.LCLoadRM, R: 2})
		b.Emit(masm.I{B: microcode.BSelRM, R: 2, FF: microcode.FFPutCount})
		b.Emit(masm.I{Const: 0, HasConst: true, ALU: microcode.ALUB, LC: microcode.LCLoadRM, R: 1})
		b.EmitAt("loop", masm.I{A: microcode.ASelFetch, R: 1, ALU: microcode.ALUAplus1, LC: microcode.LCLoadRM})
		if poll {
			b.EmitAt("poll", masm.I{FF: microcode.FFProbeMD})
			b.Emit(masm.I{Flow: masm.Branch(microcode.CondMB, "poll", "ready")})
			b.EmitAt("ready", masm.I{ALU: microcode.ALUB, B: microcode.BSelMD, LC: microcode.LCLoadT})
		} else {
			b.Emit(masm.I{ALU: microcode.ALUB, B: microcode.BSelMD, LC: microcode.LCLoadT})
		}
		b.Emit(masm.I{Flow: masm.Branch(microcode.CondCountNZ, "", "loop")})
		b.Halt()
		// A competing device-service routine (two instructions): take the
		// word and count it.
		b.EmitAt("svc", masm.I{FF: microcode.FFInput, ALU: microcode.ALUAplus1,
			A: microcode.ASelRM, R: 3, LC: microcode.LCLoadRM})
		b.Emit(masm.I{Block: true, Flow: masm.Goto("svc")})
		return b
	}
	run := func(poll bool, opts core.Options, withDevice bool) (cycles uint64, services uint16, err error) {
		b := build(poll)
		p, err := b.Assemble()
		if err != nil {
			return 0, 0, err
		}
		m, err := core.New(core.Config{Options: opts})
		if err != nil {
			return 0, 0, err
		}
		m.Load(&p.Words)
		m.Start(p.MustEntry("start"))
		if withDevice {
			src := device.NewWordSource(12, 40, 1)
			if err := m.Attach(src); err != nil {
				return 0, 0, err
			}
			m.SetIOAddress(12, 12)
			m.SetTPC(12, p.MustEntry("svc"))
		}
		if !m.Run(1_000_000) {
			return 0, 0, fmt.Errorf("bench: hold workload did not halt")
		}
		return m.Cycle(), m.RM(3), nil
	}

	holdC, holdSvc, err := run(false, core.Options{}, true)
	if err != nil {
		return fail("E12", title, err)
	}
	fixedC, _, err := run(false, core.Options{FixedWaitMemory: true}, true)
	if err != nil {
		return fail("E12", title, err)
	}
	pollC, pollSvc, err := run(true, core.Options{}, true)
	if err != nil {
		return fail("E12", title, err)
	}
	fixedSlow := float64(fixedC) / float64(holdC)
	pollSlow := float64(pollC) / float64(holdC)
	pass := fixedSlow > 3 && pollSlow > 1.2 && holdSvc > 0 && pollSvc > 0
	return Table{
		ID: "E12", Title: title, Claim: claim,
		Rows: []Row{
			{"Hold (Dorado)", "baseline", fmt.Sprintf("%d cycles", holdC), fmt.Sprintf("%d device services absorbed", holdSvc)},
			{"fixed worst-case wait", "unsatisfactory", fmt.Sprintf("%d cycles (%.1f× slower)", fixedC, fixedSlow), "every hit pays the miss latency"},
			{"explicit polling", "unsatisfactory", fmt.Sprintf("%d cycles (%.1f× slower)", pollC, pollSlow), fmt.Sprintf("%d services; poll burns issue slots", pollSvc)},
		},
		Pass: pass,
	}
}
