package bench

import "testing"

func TestAllExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	for _, e := range Experiments() {
		tab := e.Run()
		t.Logf("\n%s", tab)
		if tab.Err != nil {
			t.Errorf("%s error: %v", tab.ID, tab.Err)
		}
		if !tab.Pass {
			t.Errorf("%s shape mismatch", tab.ID)
		}
	}
}
