package bench

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"dorado/internal/bitblt"
	"dorado/internal/core"
	"dorado/internal/obs"
)

// This file measures *host* performance — how fast the simulator itself
// runs on the machine executing it — as opposed to the simulated §7 claims
// the E-experiments reproduce. Each workload runs on three execution paths:
// the predecoded hot loop (the default), the reference interpreter
// (Config.Reference: decode the packed microword from scratch every cycle
// and scan all 16 device slots, the seed simulator's behavior), and the
// predecoded loop with an observability recorder attached. The
// predecoded/reference ratio is the predecode speedup recorded in
// BENCH_SIM.json; the predecoded/instrumented ratio is the metrics-on
// overhead the bench guard bounds (see guard.go).

// Measurement paths.
const (
	PathPredecoded   = "predecoded"   // the default hot loop
	PathReference    = "reference"    // per-cycle decode (seed behavior)
	PathInstrumented = "instrumented" // hot loop + obs.Recorder attached
	PathTranslated   = "translated"   // superblock translation (core.Translation)
	PathProfiled     = "profiled"     // hot loop + core.Profiler attached
)

// HostWorkload is one host-throughput scenario. Build constructs a machine
// under cfg and returns a run function that advances the simulation by up
// to budget cycles, returning the cycles actually simulated — so the timed
// region excludes assembly and machine construction. The machine is
// returned alongside so the instrumented path can attach a recorder.
type HostWorkload struct {
	ID    string
	Name  string
	Build func(cfg core.Config) (run func(budget uint64) (uint64, error), m *core.Machine, err error)
}

// HostWorkloads returns the §7 workload families used for host-throughput
// measurement: the emulator mix, the disk transfer idiom, fast I/O at full
// memory bandwidth, and BitBlt.
func HostWorkloads() []HostWorkload {
	return []HostWorkload{
		{ID: "emulator", Name: "Mesa emulator mix (IFU dispatch, frame load/store, branch)", Build: buildHostEmulator},
		{ID: "disk", Name: "Disk transfer, 3 cycles per 2 words (§7)", Build: buildHostDisk},
		{ID: "fastio", Name: "Fast I/O display at full memory bandwidth (§7)", Build: buildHostFastIO},
		{ID: "bitblt", Name: "BitBlt merge, src/dst/filter (§7)", Build: buildHostBitBlt},
	}
}

// hostRunner adapts a machine-level workload builder (workloads.go) to the
// host-measurement shape: the timed region is RunCycles only.
func hostRunner(build func(core.Config) (*core.Machine, error)) func(core.Config) (func(uint64) (uint64, error), *core.Machine, error) {
	return func(cfg core.Config) (func(uint64) (uint64, error), *core.Machine, error) {
		m, err := build(cfg)
		if err != nil {
			return nil, nil, err
		}
		return func(budget uint64) (uint64, error) { return m.RunCycles(budget), nil }, m, nil
	}
}

var (
	buildHostEmulator = hostRunner(BuildEmulatorMachine)
	buildHostDisk     = hostRunner(BuildDiskMachine)
	buildHostFastIO   = hostRunner(BuildFastIOMachine)
)

// buildHostBitBlt runs back-to-back screen-scale merges; the machine's
// cycle counter accumulates across blits, so run consumes its budget in
// whole-blit units.
func buildHostBitBlt(cfg core.Config) (func(uint64) (uint64, error), *core.Machine, error) {
	ps, err := bitblt.Build()
	if err != nil {
		return nil, nil, err
	}
	m, err := core.New(cfg)
	if err != nil {
		return nil, nil, err
	}
	p := bitblt.Params{
		Src: 0x10000, Dst: 0x40000, WidthWords: 64, Height: 64,
		SrcPitch: 64, DstPitch: 64, Op: bitblt.Merge, Filter: 0xAAAA,
	}
	for a := p.Src; a < p.Src+uint32(p.SrcPitch*p.Height); a++ {
		m.Mem().Poke(a, uint16(a*2654435761))
	}
	return func(budget uint64) (uint64, error) {
		var done uint64
		for done < budget {
			c, err := ps.Run(m, p)
			if err != nil {
				return done, err
			}
			done += c
		}
		return done, nil
	}, m, nil
}

// HostResult is one (workload, path) measurement.
type HostResult struct {
	Workload       string  `json:"workload"`
	Path           string  `json:"path"` // PathPredecoded, PathReference, or PathInstrumented
	SimCycles      uint64  `json:"sim_cycles"`
	HostSeconds    float64 `json:"host_seconds"`
	CyclesPerSec   float64 `json:"cycles_per_sec"`
	NsPerCycle     float64 `json:"ns_per_cycle"`
	AllocsPerCycle float64 `json:"allocs_per_cycle"`
}

// MeasureHost times one workload on one path for roughly budget simulated
// cycles, reporting host throughput and allocation rate.
func MeasureHost(w HostWorkload, path string, budget uint64) (HostResult, error) {
	run, m, err := w.Build(core.Config{
		Reference:   path == PathReference,
		Translation: core.Translation{Enable: path == PathTranslated},
	})
	if err != nil {
		return HostResult{}, err
	}
	if path == PathInstrumented {
		// The recorder a long measurement run would realistically wear:
		// default histogram/counter setup, bounded span and timeline
		// buffers (overflow is counted, not stored).
		m.SetRecorder(obs.NewRecorder(obs.Config{}))
	}
	if path == PathProfiled {
		m.SetProfiler(core.NewProfiler())
	}
	// Warm up: caches, device queues, and the host branch predictor.
	if _, err := run(budget / 10); err != nil {
		return HostResult{}, err
	}
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	cycles, err := run(budget)
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	if err != nil {
		return HostResult{}, err
	}
	if cycles == 0 {
		return HostResult{}, fmt.Errorf("bench: workload %s simulated no cycles", w.ID)
	}
	sec := elapsed.Seconds()
	return HostResult{
		Workload:       w.ID,
		Path:           path,
		SimCycles:      cycles,
		HostSeconds:    sec,
		CyclesPerSec:   float64(cycles) / sec,
		NsPerCycle:     sec * 1e9 / float64(cycles),
		AllocsPerCycle: float64(after.Mallocs-before.Mallocs) / float64(cycles),
	}, nil
}

// FleetPoint is one fleet-scaling measurement: aggregate simulator
// throughput with Sessions machines running concurrently on Workers
// worker goroutines (see internal/fleet.MeasureScaling, recorded by
// simbench -fleet). Scaling is CyclesPerSec over the one-session point's
// CyclesPerSec — the multi-tenancy speedup the fleet service exists for.
type FleetPoint struct {
	Sessions int `json:"sessions"`
	Workers  int `json:"workers"`
	// Gomaxprocs is the host parallelism available when the point was
	// measured; a point with Gomaxprocs < Sessions measured queueing, not
	// scaling (simbench warns when recording one).
	Gomaxprocs   int     `json:"gomaxprocs,omitempty"`
	SimCycles    uint64  `json:"sim_cycles"`
	HostSeconds  float64 `json:"host_seconds"`
	CyclesPerSec float64 `json:"cycles_per_sec"`
	Scaling      float64 `json:"scaling_vs_one"`
	// MetricsCyclesPerSec is the aggregate throughput of the same
	// configuration with observability recorders attached (Spec.Metrics);
	// zero when the instrumented variant was not measured. The bench
	// guard's FleetMetricsOn budget bounds CyclesPerSec over this.
	MetricsCyclesPerSec float64 `json:"metrics_cycles_per_sec,omitempty"`
}

// HostReport is the BENCH_SIM.json document: every path across every
// workload plus the per-workload predecode speedup (predecoded over
// reference cycles/sec) and metrics-on overhead (predecoded over
// instrumented; 1.0 means free). Reports written before the instrumented
// path existed simply lack those results and the overhead map; Fleet is
// present only when simbench ran with -fleet (older reports carry none).
type HostReport struct {
	GoVersion    string             `json:"go_version"`
	GOOS         string             `json:"goos"`
	GOARCH       string             `json:"goarch"`
	CyclesPerRun uint64             `json:"cycles_per_run"`
	Results      []HostResult       `json:"results"`
	Speedup      map[string]float64 `json:"speedup"`
	Overhead     map[string]float64 `json:"overhead,omitempty"`
	// Translation is the per-workload superblock-translation speedup
	// (translated over predecoded cycles/sec, same run). Reports written
	// before the translated path existed lack it.
	Translation map[string]float64 `json:"translation,omitempty"`
	// ProfOverhead is the per-workload profiler-on cost (predecoded over
	// profiled cycles/sec, same run; 1.0 means free). Reports written
	// before the profiled path existed lack it.
	ProfOverhead map[string]float64 `json:"prof_overhead,omitempty"`
	Fleet        []FleetPoint       `json:"fleet,omitempty"`
}

// Result returns the measurement for (workload, path), or nil.
func (r *HostReport) Result(workload, path string) *HostResult {
	for i := range r.Results {
		if r.Results[i].Workload == workload && r.Results[i].Path == path {
			return &r.Results[i]
		}
	}
	return nil
}

// HostTable renders a report as a workload × path table (one column per
// execution path, in Mcycles/sec) with the derived ratios, the layout
// benchtab -host prints. Paths absent from the report (older files) render
// as "-", so a pre-translation BENCH_SIM.json still formats cleanly.
func (r *HostReport) HostTable() string {
	var b strings.Builder
	paths := []string{PathPredecoded, PathReference, PathInstrumented, PathTranslated, PathProfiled}
	fmt.Fprintf(&b, "host throughput, Mcycles/sec (%s %s/%s, %d cycles per run)\n",
		r.GoVersion, r.GOOS, r.GOARCH, r.CyclesPerRun)
	fmt.Fprintf(&b, "%-10s", "workload")
	for _, p := range paths {
		fmt.Fprintf(&b, " %12s", p)
	}
	fmt.Fprintf(&b, " %9s %9s %11s %9s\n", "speedup", "metrics", "translated", "prof")
	for _, w := range HostWorkloads() {
		fmt.Fprintf(&b, "%-10s", w.ID)
		for _, p := range paths {
			if res := r.Result(w.ID, p); res != nil {
				fmt.Fprintf(&b, " %12.1f", res.CyclesPerSec/1e6)
			} else {
				fmt.Fprintf(&b, " %12s", "-")
			}
		}
		ratio := func(m map[string]float64, id string) string {
			if v, ok := m[id]; ok && v > 0 {
				return fmt.Sprintf("%.2fx", v)
			}
			return "-"
		}
		fmt.Fprintf(&b, " %9s %9s %11s %9s\n",
			ratio(r.Speedup, w.ID), ratio(r.Overhead, w.ID), ratio(r.Translation, w.ID),
			ratio(r.ProfOverhead, w.ID))
	}
	return b.String()
}

// RunHostReport measures every workload on all four paths, best of reps
// runs each. Host throughput on shared machines jitters downward
// (scheduler preemption, frequency scaling), so each path's result is the
// best of reps measurements — the steadier estimator of what the
// simulator can sustain — and the reps are interleaved across paths so a
// contention episode degrades all paths alike instead of silently skewing
// one side of a ratio the bench guard checks.
func RunHostReport(budget uint64, reps int) (HostReport, error) {
	if reps < 1 {
		reps = 1
	}
	rep := HostReport{
		GoVersion:    runtime.Version(),
		GOOS:         runtime.GOOS,
		GOARCH:       runtime.GOARCH,
		CyclesPerRun: budget,
		Speedup:      map[string]float64{},
		Overhead:     map[string]float64{},
		Translation:  map[string]float64{},
		ProfOverhead: map[string]float64{},
	}
	paths := []string{PathPredecoded, PathReference, PathInstrumented, PathTranslated, PathProfiled}
	for _, w := range HostWorkloads() {
		best := map[string]HostResult{}
		for i := 0; i < reps; i++ {
			for _, path := range paths {
				r, err := MeasureHost(w, path, budget)
				if err != nil {
					return rep, fmt.Errorf("bench: %s (%s): %w", w.ID, path, err)
				}
				if b, ok := best[path]; !ok || r.CyclesPerSec > b.CyclesPerSec {
					best[path] = r
				}
			}
		}
		fast, ref, inst, trans, prof := best[PathPredecoded], best[PathReference],
			best[PathInstrumented], best[PathTranslated], best[PathProfiled]
		rep.Results = append(rep.Results, fast, ref, inst, trans, prof)
		rep.Speedup[w.ID] = fast.CyclesPerSec / ref.CyclesPerSec
		rep.Overhead[w.ID] = fast.CyclesPerSec / inst.CyclesPerSec
		rep.Translation[w.ID] = trans.CyclesPerSec / fast.CyclesPerSec
		rep.ProfOverhead[w.ID] = fast.CyclesPerSec / prof.CyclesPerSec
	}
	return rep, nil
}
