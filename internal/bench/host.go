package bench

import (
	"fmt"
	"runtime"
	"time"

	"dorado/internal/bitblt"
	"dorado/internal/core"
)

// This file measures *host* performance — how fast the simulator itself
// runs on the machine executing it — as opposed to the simulated §7 claims
// the E-experiments reproduce. Each workload runs on both execution paths:
// the predecoded hot loop (the default) and the reference interpreter
// (Config.Reference: decode the packed microword from scratch every cycle
// and scan all 16 device slots, the seed simulator's behavior). The ratio
// of the two is the predecode speedup recorded in BENCH_SIM.json.

// HostWorkload is one host-throughput scenario. Build constructs a machine
// under cfg and returns a run function that advances the simulation by up
// to budget cycles, returning the cycles actually simulated — so the timed
// region excludes assembly and machine construction.
type HostWorkload struct {
	ID   string
	Name string
	Build func(cfg core.Config) (run func(budget uint64) (uint64, error), err error)
}

// HostWorkloads returns the §7 workload families used for host-throughput
// measurement: the emulator mix, the disk transfer idiom, fast I/O at full
// memory bandwidth, and BitBlt.
func HostWorkloads() []HostWorkload {
	return []HostWorkload{
		{ID: "emulator", Name: "Mesa emulator mix (IFU dispatch, frame load/store, branch)", Build: buildHostEmulator},
		{ID: "disk", Name: "Disk transfer, 3 cycles per 2 words (§7)", Build: buildHostDisk},
		{ID: "fastio", Name: "Fast I/O display at full memory bandwidth (§7)", Build: buildHostFastIO},
		{ID: "bitblt", Name: "BitBlt merge, src/dst/filter (§7)", Build: buildHostBitBlt},
	}
}

// hostRunner adapts a machine-level workload builder (workloads.go) to the
// host-measurement shape: the timed region is RunCycles only.
func hostRunner(build func(core.Config) (*core.Machine, error)) func(core.Config) (func(uint64) (uint64, error), error) {
	return func(cfg core.Config) (func(uint64) (uint64, error), error) {
		m, err := build(cfg)
		if err != nil {
			return nil, err
		}
		return func(budget uint64) (uint64, error) { return m.RunCycles(budget), nil }, nil
	}
}

var (
	buildHostEmulator = hostRunner(BuildEmulatorMachine)
	buildHostDisk     = hostRunner(BuildDiskMachine)
	buildHostFastIO   = hostRunner(BuildFastIOMachine)
)

// buildHostBitBlt runs back-to-back screen-scale merges; the machine's
// cycle counter accumulates across blits, so run consumes its budget in
// whole-blit units.
func buildHostBitBlt(cfg core.Config) (func(uint64) (uint64, error), error) {
	ps, err := bitblt.Build()
	if err != nil {
		return nil, err
	}
	m, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	p := bitblt.Params{
		Src: 0x10000, Dst: 0x40000, WidthWords: 64, Height: 64,
		SrcPitch: 64, DstPitch: 64, Op: bitblt.Merge, Filter: 0xAAAA,
	}
	for a := p.Src; a < p.Src+uint32(p.SrcPitch*p.Height); a++ {
		m.Mem().Poke(a, uint16(a*2654435761))
	}
	return func(budget uint64) (uint64, error) {
		var done uint64
		for done < budget {
			c, err := ps.Run(m, p)
			if err != nil {
				return done, err
			}
			done += c
		}
		return done, nil
	}, nil
}

// HostResult is one (workload, path) measurement.
type HostResult struct {
	Workload       string  `json:"workload"`
	Path           string  `json:"path"` // "predecoded" or "reference"
	SimCycles      uint64  `json:"sim_cycles"`
	HostSeconds    float64 `json:"host_seconds"`
	CyclesPerSec   float64 `json:"cycles_per_sec"`
	NsPerCycle     float64 `json:"ns_per_cycle"`
	AllocsPerCycle float64 `json:"allocs_per_cycle"`
}

// MeasureHost times one workload on one path for roughly budget simulated
// cycles, reporting host throughput and allocation rate.
func MeasureHost(w HostWorkload, reference bool, budget uint64) (HostResult, error) {
	run, err := w.Build(core.Config{Reference: reference})
	if err != nil {
		return HostResult{}, err
	}
	path := "predecoded"
	if reference {
		path = "reference"
	}
	// Warm up: caches, device queues, and the host branch predictor.
	if _, err := run(budget / 10); err != nil {
		return HostResult{}, err
	}
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	cycles, err := run(budget)
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	if err != nil {
		return HostResult{}, err
	}
	if cycles == 0 {
		return HostResult{}, fmt.Errorf("bench: workload %s simulated no cycles", w.ID)
	}
	sec := elapsed.Seconds()
	return HostResult{
		Workload:       w.ID,
		Path:           path,
		SimCycles:      cycles,
		HostSeconds:    sec,
		CyclesPerSec:   float64(cycles) / sec,
		NsPerCycle:     sec * 1e9 / float64(cycles),
		AllocsPerCycle: float64(after.Mallocs-before.Mallocs) / float64(cycles),
	}, nil
}

// HostReport is the BENCH_SIM.json document: both paths across every
// workload plus the per-workload speedup (predecoded over reference
// cycles/sec).
type HostReport struct {
	GoVersion   string             `json:"go_version"`
	GOOS        string             `json:"goos"`
	GOARCH      string             `json:"goarch"`
	CyclesPerRun uint64            `json:"cycles_per_run"`
	Results     []HostResult       `json:"results"`
	Speedup     map[string]float64 `json:"speedup"`
}

// RunHostReport measures every workload on both paths.
func RunHostReport(budget uint64) (HostReport, error) {
	rep := HostReport{
		GoVersion:    runtime.Version(),
		GOOS:         runtime.GOOS,
		GOARCH:       runtime.GOARCH,
		CyclesPerRun: budget,
		Speedup:      map[string]float64{},
	}
	for _, w := range HostWorkloads() {
		fast, err := MeasureHost(w, false, budget)
		if err != nil {
			return rep, fmt.Errorf("bench: %s (predecoded): %w", w.ID, err)
		}
		ref, err := MeasureHost(w, true, budget)
		if err != nil {
			return rep, fmt.Errorf("bench: %s (reference): %w", w.ID, err)
		}
		rep.Results = append(rep.Results, fast, ref)
		rep.Speedup[w.ID] = fast.CyclesPerSec / ref.CyclesPerSec
	}
	return rep, nil
}
