package bench

import (
	"fmt"
	"math/rand"

	"dorado/internal/emulator"
	"dorado/internal/masm"
	"dorado/internal/microcode"
)

// E7Placement reproduces §7's placement result: "the automatic placement
// used 99.9% of the available memory when called upon to place an
// essentially full microstore" — despite the page structure, the even/odd
// branch pairs, and the subroutine-continuation constraint.
//
// The experiment generates synthetic microcode with the statistics of real
// handler code (short routines, ~40% busy FF fields, conditional branches,
// calls to shared subroutines) until the placer reports the store full,
// then reports how much of the store the last successful placement used.
// The real emulators' placement statistics are reported alongside.
func E7Placement() Table {
	const title = "Microstore placement utilization"
	const claim = `"the automatic placement used 99.9% of the available memory when called upon to place an essentially full microstore" (§7)`

	var routines int
	build := func(n int) *masm.Builder {
		r := rand.New(rand.NewSource(1980))
		b := masm.NewBuilder()
		b.EmitAt("sub.shared", masm.I{FF: microcode.FFGetQ, LC: microcode.LCLoadT, Flow: masm.Return()})
		for i := 0; i < n; i++ {
			emitSyntheticRoutine(b, r, i)
		}
		b.Halt()
		return b
	}
	// Grow until placement fails, then bisect down to the largest success.
	lo, hi := 1, 2
	for {
		if _, err := build(hi).Assemble(); err != nil {
			break
		}
		lo = hi
		hi *= 2
		if hi > 4096 {
			break
		}
	}
	for lo+1 < hi {
		mid := (lo + hi) / 2
		if _, err := build(mid).Assemble(); err != nil {
			hi = mid
		} else {
			lo = mid
		}
	}
	routines = lo
	p, err := build(routines).Assemble()
	if err != nil {
		return fail("E7", title, err)
	}
	st := p.Stats

	rows := []Row{
		{"synthetic full store", "99.9%", pct(st.UtilizationStore),
			fmt.Sprintf("%d routines, %d words placed of %d", routines, st.WordsUsed, microcode.StoreSize)},
		{"packing of touched pages", "(not reported)", pct(st.UtilizationTouched),
			fmt.Sprintf("largest same-page cluster %d words", st.LargestCluster)},
	}
	// Real microcode placement, for context.
	for _, build := range []struct {
		name string
		f    func() (*emulator.Program, error)
	}{
		{"Mesa emulator", emulator.BuildMesa},
		{"BCPL emulator", emulator.BuildBCPL},
		{"Lisp emulator", emulator.BuildLisp},
		{"Smalltalk emulator", emulator.BuildSmalltalk},
	} {
		ep, err := build.f()
		if err != nil {
			return fail("E7", title, err)
		}
		s := ep.Micro.Stats
		rows = append(rows, Row{build.name, "", pct(s.UtilizationTouched),
			fmt.Sprintf("%d µinsts in %d pages", s.Instructions, s.PagesTouched)})
	}
	// The composed production suite (all four emulators in one store).
	if img, err := emulator.BuildSystemImage(); err == nil {
		s := img.Micro.Stats
		rows = append(rows, Row{"all emulators, one image", "", pct(s.UtilizationTouched),
			fmt.Sprintf("%d words in %d pages (spliced)", s.WordsUsed, s.PagesTouched)})
	}
	pass := st.UtilizationStore > 0.97
	return Table{ID: "E7", Title: title, Claim: claim, Rows: rows, Pass: pass}
}

// emitSyntheticRoutine writes one handler-shaped routine: 4–12 straight
// instructions with the FF busy about 40% of the time, a conditional
// branch about half the time, and an occasional call to the shared
// subroutine.
func emitSyntheticRoutine(b *masm.Builder, r *rand.Rand, id int) {
	name := fmt.Sprintf("r%d", id)
	n := 4 + r.Intn(9)
	b.Label(name)
	for j := 0; j < n; j++ {
		i := masm.I{ALU: microcode.ALUAplus1, A: microcode.ASelT, LC: microcode.LCLoadT}
		if r.Float64() < 0.4 {
			i.FF = microcode.FFGetCount // an arbitrary FF op: successor must share the page
			i.LC = microcode.LCLoadRM
			i.R = uint8(r.Intn(8))
			i.A = microcode.ASelRM
			i.ALU = microcode.ALUA
		}
		b.Emit(i)
	}
	if r.Float64() < 0.3 {
		b.Emit(masm.I{Flow: masm.Call("sub.shared")})
	}
	if r.Float64() < 0.5 {
		els, then := name+".e", name+".t"
		b.Emit(masm.I{Flow: masm.Branch(microcode.Condition(r.Intn(3)), els, then)})
		b.EmitAt(els, masm.I{Flow: masm.Goto(name + ".x")})
		b.EmitAt(then, masm.I{ALU: microcode.ALUAplus1, A: microcode.ASelT, LC: microcode.LCLoadT})
		b.EmitAt(name+".x", masm.I{Flow: masm.Goto(name + ".end")})
	}
	b.EmitAt(name+".end", masm.I{FF: microcode.FFHalt, Flow: masm.Self()})
}
