package bench

import (
	"fmt"
	"reflect"
	"testing"

	"dorado/internal/core"
	"dorado/internal/emulator"
)

// This file is the workload-level half of the interpreter differential
// test: each §7 experiment family (Mesa emulator, disk, fast I/O, slow I/O,
// BitBlt) runs once on each execution path — predecoded fast path,
// reference interpreter (Config.Reference, the seed's decode-every-cycle
// behavior), and superblock-translated (Config.Translation) — and all
// machines must agree cycle-for-cycle: identical Stats, identical final
// registers, identical memory. The instruction-level pairs live in
// internal/core/predecode_test.go and internal/core/translate_test.go.

// diffTranslation is the translation config the differential workloads run
// under: a low hot threshold so even the short runs spend most of their
// cycles inside fused superblocks.
var diffTranslation = core.Translation{Enable: true, HotThreshold: 8}

// diffPair runs build once per execution path (predecoded, reference
// interpreter, superblock-translated) and checks all machines ended in the
// same state. The predecoded machine is the comparison pivot; mismatches
// name the offending path.
func diffPair(t *testing.T, name string, build func(cfg core.Config) (*core.Machine, error), memLo, memHi uint32) {
	t.Helper()
	fast, err := build(core.Config{})
	if err != nil {
		t.Fatalf("%s: fast build: %v", name, err)
	}
	others := []struct {
		path string
		cfg  core.Config
	}{
		{"reference", core.Config{Reference: true}},
		{"translated", core.Config{Translation: diffTranslation}},
	}
	for _, o := range others {
		ref, err := build(o.cfg)
		if err != nil {
			t.Fatalf("%s: %s build: %v", name, o.path, err)
		}
		if o.path == "translated" {
			// The translator must at least have engaged. FusedCycles can
			// legitimately be zero (slow-io's loopback wakes its task every
			// cycle, so the entry guard never opens) but a run that built no
			// blocks at all would make this differential vacuous.
			if ts := ref.TranslationStats(); ts.BlocksBuilt == 0 {
				t.Errorf("%s: translated run built no superblocks (stats %+v)", name, ts)
			}
		}
		if fast.Cycle() != ref.Cycle() {
			t.Errorf("%s: cycle count diverged: fast %d, %s %d", name, fast.Cycle(), o.path, ref.Cycle())
		}
		if fast.Halted() != ref.Halted() || fast.HaltPC() != ref.HaltPC() {
			t.Errorf("%s: halt state diverged: fast (%v,%v), %s (%v,%v)",
				name, fast.Halted(), fast.HaltPC(), o.path, ref.Halted(), ref.HaltPC())
		}
		if fs, rs := fast.Stats(), ref.Stats(); !reflect.DeepEqual(fs, rs) {
			t.Errorf("%s: stats diverged:\nfast: %+v\n%-4s: %+v", name, fs, o.path, rs)
		}
		if fast.CurTask() != ref.CurTask() || fast.CurPC() != ref.CurPC() {
			t.Errorf("%s: control diverged: fast (task %d, pc %v), %s (task %d, pc %v)",
				name, fast.CurTask(), fast.CurPC(), o.path, ref.CurTask(), ref.CurPC())
		}
		for i := 0; i < 256; i++ {
			if fast.RM(i) != ref.RM(i) {
				t.Errorf("%s: RM[%d] diverged: fast %#04x, %s %#04x", name, i, fast.RM(i), o.path, ref.RM(i))
			}
			if fast.Stack(i) != ref.Stack(i) {
				t.Errorf("%s: stack[%d] diverged: fast %#04x, %s %#04x", name, i, fast.Stack(i), o.path, ref.Stack(i))
			}
		}
		for task := 0; task < 16; task++ {
			if fast.T(task) != ref.T(task) || fast.TPC(task) != ref.TPC(task) {
				t.Errorf("%s: task %d diverged: fast (T %#04x, TPC %v), %s (T %#04x, TPC %v)",
					name, task, fast.T(task), fast.TPC(task), o.path, ref.T(task), ref.TPC(task))
			}
		}
		for a := memLo; a < memHi; a++ {
			if fv, rv := fast.Mem().Peek(a), ref.Mem().Peek(a); fv != rv {
				t.Errorf("%s: memory %#x diverged: fast %#04x, %s %#04x", name, a, fv, o.path, rv)
			}
		}
	}
}

// TestDifferentialMesaEmulator runs a mixed Mesa macroprogram (loads,
// stores, arithmetic, a counted loop — the §7 emulator-mix shape) through
// the full IFU dispatch pipeline on both paths.
func TestDifferentialMesaEmulator(t *testing.T) {
	build := func(cfg core.Config) (*core.Machine, error) {
		m, err := core.New(cfg)
		if err != nil {
			return nil, err
		}
		mesa, err := emulator.BuildMesa()
		if err != nil {
			return nil, err
		}
		a := emulator.NewAsm(mesa)
		a.OpB("LIB", 40)
		a.OpB("SL", 4)
		a.Label("loop")
		a.OpB("LL", 4)
		a.OpB("LIB", 1)
		a.Op("SUB")
		a.Op("DUP")
		a.OpB("SL", 4)
		a.OpL("JNZ", "loop")
		a.Op("HALT")
		if err := a.Install(m); err != nil {
			return nil, err
		}
		if err := mesa.InstallOn(m); err != nil {
			return nil, err
		}
		m.Run(2_000_000)
		return m, nil
	}
	diffPair(t, "mesa-emulator", build, emulator.VAFrames, emulator.VAFrames+0x100)
}

// TestDifferentialDisk runs the E4 shape: disk word-source task alongside
// the counting emulator, the 3-cycles-per-2-words transfer idiom.
func TestDifferentialDisk(t *testing.T) {
	build := func(cfg core.Config) (*core.Machine, error) {
		m, err := BuildDiskMachine(cfg)
		if err != nil {
			return nil, err
		}
		m.Run(60_000)
		return m, nil
	}
	diffPair(t, "disk", build, 0x6000, 0x6200)
}

// TestDifferentialFastIO runs the E5 shape: display device at full memory
// bandwidth, two microinstructions per 16-word block.
func TestDifferentialFastIO(t *testing.T) {
	build := func(cfg core.Config) (*core.Machine, error) {
		m, err := BuildFastIOMachine(cfg)
		if err != nil {
			return nil, err
		}
		m.Run(60_000)
		return m, nil
	}
	diffPair(t, "fast-io", build, 0x20000, 0x20100)
}

// TestDifferentialSlowIO runs the E6 shape: loopback device, one word per
// cycle through IODATA, loop closed on COUNT.
func TestDifferentialSlowIO(t *testing.T) {
	build := func(cfg core.Config) (*core.Machine, error) {
		m, err := BuildSlowIOMachine(cfg)
		if err != nil {
			return nil, err
		}
		m.Run(30_000)
		return m, nil
	}
	diffPair(t, "slow-io", build, 0x6000, 0x6400)
}

// TestDifferentialBitBlt runs the E3 shape: a bit-aligned merge over a
// screen-sized region, the heaviest shifter/masker workload.
func TestDifferentialBitBlt(t *testing.T) {
	build := func(cfg core.Config) (*core.Machine, error) {
		m, err := BuildBitBltMachine(cfg)
		if err != nil {
			return nil, err
		}
		if !m.Run(2_000_000) {
			return nil, fmt.Errorf("bitblt did not halt")
		}
		return m, nil
	}
	diffPair(t, "bitblt", build, 0x40000, 0x40000+32*24)
}
