package bench

import (
	"fmt"
	"reflect"
	"testing"

	"dorado/internal/core"
	"dorado/internal/emulator"
)

// This file is the workload-level half of the predecode differential test:
// each §7 experiment family (Mesa emulator, disk, fast I/O, slow I/O,
// BitBlt) runs once on the predecoded fast path and once on the reference
// interpreter (Config.Reference, the seed's decode-every-cycle behavior),
// and the two machines must agree cycle-for-cycle: identical Stats,
// identical final registers, identical memory. The instruction-level pairs
// live in internal/core/predecode_test.go.

// diffPair runs build twice (fast path, then reference interpreter) and
// checks the two machines ended in the same state.
func diffPair(t *testing.T, name string, build func(cfg core.Config) (*core.Machine, error), memLo, memHi uint32) {
	t.Helper()
	fast, err := build(core.Config{})
	if err != nil {
		t.Fatalf("%s: fast build: %v", name, err)
	}
	ref, err := build(core.Config{Reference: true})
	if err != nil {
		t.Fatalf("%s: reference build: %v", name, err)
	}
	if fast.Cycle() != ref.Cycle() {
		t.Errorf("%s: cycle count diverged: fast %d, reference %d", name, fast.Cycle(), ref.Cycle())
	}
	if fast.Halted() != ref.Halted() || fast.HaltPC() != ref.HaltPC() {
		t.Errorf("%s: halt state diverged: fast (%v,%v), reference (%v,%v)",
			name, fast.Halted(), fast.HaltPC(), ref.Halted(), ref.HaltPC())
	}
	if fs, rs := fast.Stats(), ref.Stats(); !reflect.DeepEqual(fs, rs) {
		t.Errorf("%s: stats diverged:\nfast: %+v\nref:  %+v", name, fs, rs)
	}
	if fast.CurTask() != ref.CurTask() || fast.CurPC() != ref.CurPC() {
		t.Errorf("%s: control diverged: fast (task %d, pc %v), reference (task %d, pc %v)",
			name, fast.CurTask(), fast.CurPC(), ref.CurTask(), ref.CurPC())
	}
	for i := 0; i < 256; i++ {
		if fast.RM(i) != ref.RM(i) {
			t.Errorf("%s: RM[%d] diverged: fast %#04x, reference %#04x", name, i, fast.RM(i), ref.RM(i))
		}
		if fast.Stack(i) != ref.Stack(i) {
			t.Errorf("%s: stack[%d] diverged: fast %#04x, reference %#04x", name, i, fast.Stack(i), ref.Stack(i))
		}
	}
	for task := 0; task < 16; task++ {
		if fast.T(task) != ref.T(task) || fast.TPC(task) != ref.TPC(task) {
			t.Errorf("%s: task %d diverged: fast (T %#04x, TPC %v), reference (T %#04x, TPC %v)",
				name, task, fast.T(task), fast.TPC(task), ref.T(task), ref.TPC(task))
		}
	}
	for a := memLo; a < memHi; a++ {
		if fv, rv := fast.Mem().Peek(a), ref.Mem().Peek(a); fv != rv {
			t.Errorf("%s: memory %#x diverged: fast %#04x, reference %#04x", name, a, fv, rv)
		}
	}
}

// TestDifferentialMesaEmulator runs a mixed Mesa macroprogram (loads,
// stores, arithmetic, a counted loop — the §7 emulator-mix shape) through
// the full IFU dispatch pipeline on both paths.
func TestDifferentialMesaEmulator(t *testing.T) {
	build := func(cfg core.Config) (*core.Machine, error) {
		m, err := core.New(cfg)
		if err != nil {
			return nil, err
		}
		mesa, err := emulator.BuildMesa()
		if err != nil {
			return nil, err
		}
		a := emulator.NewAsm(mesa)
		a.OpB("LIB", 40)
		a.OpB("SL", 4)
		a.Label("loop")
		a.OpB("LL", 4)
		a.OpB("LIB", 1)
		a.Op("SUB")
		a.Op("DUP")
		a.OpB("SL", 4)
		a.OpL("JNZ", "loop")
		a.Op("HALT")
		if err := a.Install(m); err != nil {
			return nil, err
		}
		if err := mesa.InstallOn(m); err != nil {
			return nil, err
		}
		m.Run(2_000_000)
		return m, nil
	}
	diffPair(t, "mesa-emulator", build, emulator.VAFrames, emulator.VAFrames+0x100)
}

// TestDifferentialDisk runs the E4 shape: disk word-source task alongside
// the counting emulator, the 3-cycles-per-2-words transfer idiom.
func TestDifferentialDisk(t *testing.T) {
	build := func(cfg core.Config) (*core.Machine, error) {
		m, err := BuildDiskMachine(cfg)
		if err != nil {
			return nil, err
		}
		m.Run(60_000)
		return m, nil
	}
	diffPair(t, "disk", build, 0x6000, 0x6200)
}

// TestDifferentialFastIO runs the E5 shape: display device at full memory
// bandwidth, two microinstructions per 16-word block.
func TestDifferentialFastIO(t *testing.T) {
	build := func(cfg core.Config) (*core.Machine, error) {
		m, err := BuildFastIOMachine(cfg)
		if err != nil {
			return nil, err
		}
		m.Run(60_000)
		return m, nil
	}
	diffPair(t, "fast-io", build, 0x20000, 0x20100)
}

// TestDifferentialSlowIO runs the E6 shape: loopback device, one word per
// cycle through IODATA, loop closed on COUNT.
func TestDifferentialSlowIO(t *testing.T) {
	build := func(cfg core.Config) (*core.Machine, error) {
		m, err := BuildSlowIOMachine(cfg)
		if err != nil {
			return nil, err
		}
		m.Run(30_000)
		return m, nil
	}
	diffPair(t, "slow-io", build, 0x6000, 0x6400)
}

// TestDifferentialBitBlt runs the E3 shape: a bit-aligned merge over a
// screen-sized region, the heaviest shifter/masker workload.
func TestDifferentialBitBlt(t *testing.T) {
	build := func(cfg core.Config) (*core.Machine, error) {
		m, err := BuildBitBltMachine(cfg)
		if err != nil {
			return nil, err
		}
		if !m.Run(2_000_000) {
			return nil, fmt.Errorf("bitblt did not halt")
		}
		return m, nil
	}
	diffPair(t, "bitblt", build, 0x40000, 0x40000+32*24)
}
