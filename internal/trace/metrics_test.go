package trace

import (
	"bytes"
	"strings"
	"testing"

	"dorado/internal/obs"
)

func TestMetricsSnapshotMatchesStats(t *testing.T) {
	m, _ := smallMachine(t)
	rec := obs.NewRecorder(obs.Config{})
	m.SetRecorder(rec)
	if !m.Run(100) {
		t.Fatal("did not halt")
	}
	rec.Flush(m.Cycle())
	st := m.Stats()

	s := MetricsSnapshot(m, rec)
	find := func(name string) *obs.Metric {
		t.Helper()
		for i := range s.Metrics {
			if s.Metrics[i].Name == name {
				return &s.Metrics[i]
			}
		}
		t.Fatalf("metric %s missing", name)
		return nil
	}

	if got := find("dorado_cycles_total").Samples[0].Value; got != st.Cycles {
		t.Errorf("cycles metric %d != stats %d", got, st.Cycles)
	}
	if got := find("dorado_instructions_total").Samples[0].Value; got != st.Executed {
		t.Errorf("instructions metric %d != stats %d", got, st.Executed)
	}
	var holds uint64
	for _, smp := range find("dorado_holds_total").Samples {
		holds += smp.Value
	}
	if holds != st.Holds {
		t.Errorf("hold causes sum to %d, stats %d", holds, st.Holds)
	}
	var taskCycles uint64
	for _, smp := range find("dorado_task_cycles_total").Samples {
		taskCycles += smp.Value
	}
	if taskCycles != st.Cycles {
		t.Errorf("per-task cycles sum to %d, total %d", taskCycles, st.Cycles)
	}

	// Histogram families appear only with a recorder attached.
	if h := find("dorado_hold_latency_cycles").Hist; h == nil {
		t.Error("hold-latency histogram missing")
	} else if h.Sum != st.Holds {
		t.Errorf("hold-latency sum %d != stats holds %d", h.Sum, st.Holds)
	}
	bare := MetricsSnapshot(m, nil)
	for _, mm := range bare.Metrics {
		if mm.Name == "dorado_wakeups_total" {
			t.Error("recorder-only family present without recorder")
		}
	}
}

func TestMetricsSnapshotRendersDeterministically(t *testing.T) {
	run := func() string {
		m, _ := smallMachine(t)
		rec := obs.NewRecorder(obs.Config{})
		m.SetRecorder(rec)
		if !m.Run(100) {
			t.Fatal("did not halt")
		}
		rec.Flush(m.Cycle())
		var buf bytes.Buffer
		if err := obs.WritePrometheus(&buf, MetricsSnapshot(m, rec)); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("two identical runs rendered differently:\n--- a ---\n%s\n--- b ---\n%s", a, b)
	}
	for _, want := range []string{
		"# TYPE dorado_cycles_total counter",
		"# TYPE dorado_hold_latency_cycles histogram",
		"dorado_wakeup_to_run_cycles_count",
	} {
		if !strings.Contains(a, want) {
			t.Errorf("exposition missing %q:\n%s", want, a)
		}
	}
}
