// Package trace provides observation tools for the simulated Dorado:
// disassembling cycle tracers (standing in for the console microcomputer's
// monitoring facilities, §6.2), ring-buffer capture for post-mortem
// debugging, and formatting helpers for the machine's statistics.
package trace

import (
	"fmt"
	"io"
	"strings"

	"dorado/internal/core"
	"dorado/internal/masm"
	"dorado/internal/microcode"
)

// Writer is a core.Tracer that disassembles every cycle to an io.Writer,
// annotating addresses with symbols from a placed program.
type Writer struct {
	W       io.Writer
	symbols map[microcode.Addr]string
}

// NewWriter builds a disassembling tracer. prog may be nil (no symbols).
func NewWriter(w io.Writer, prog *masm.Program) *Writer {
	t := &Writer{W: w, symbols: map[microcode.Addr]string{}}
	if prog != nil {
		for name, addr := range prog.Symbols {
			if old, ok := t.symbols[addr]; !ok || name < old {
				t.symbols[addr] = name
			}
		}
	}
	return t
}

// Trace implements core.Tracer.
func (t *Writer) Trace(ev core.TraceEvent) {
	label := t.symbols[ev.PC]
	held := ""
	if ev.Held {
		held = " HELD"
	}
	fmt.Fprintf(t.W, "%8d t%-2d %v %-18s %v%s\n", ev.Cycle, ev.Task, ev.PC, label, ev.Word, held)
}

// Ring is a core.Tracer keeping the last N events for post-mortem dumps.
type Ring struct {
	buf  []core.TraceEvent
	next int
	full bool
}

// NewRing builds a ring tracer holding n events.
func NewRing(n int) *Ring { return &Ring{buf: make([]core.TraceEvent, n)} }

// Trace implements core.Tracer.
func (r *Ring) Trace(ev core.TraceEvent) {
	r.buf[r.next] = ev
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
}

// Events returns the captured events, oldest first.
func (r *Ring) Events() []core.TraceEvent {
	if !r.full {
		return append([]core.TraceEvent(nil), r.buf[:r.next]...)
	}
	out := make([]core.TraceEvent, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// Dump renders the ring contents through a Writer.
func (r *Ring) Dump(w io.Writer, prog *masm.Program) {
	tw := NewWriter(w, prog)
	for _, ev := range r.Events() {
		tw.Trace(ev)
	}
}

// FormatStats renders the processor counters as a small report.
func FormatStats(st core.Stats) string {
	var b strings.Builder
	fmt.Fprintf(&b, "cycles       %12d  (%.3f ms simulated)\n",
		st.Cycles, float64(st.Cycles)*core.CycleNS*1e-6)
	fmt.Fprintf(&b, "executed     %12d\n", st.Executed)
	fmt.Fprintf(&b, "holds        %12d  (md %d, mem %d, ifu %d)\n",
		st.Holds, st.HoldMD, st.HoldMem, st.HoldIFU)
	fmt.Fprintf(&b, "task switches%12d  (blocks %d, preemptions %d)\n",
		st.TaskSwitches, st.Blocks, st.Preemptions)
	for t := 0; t < core.NumTasks; t++ {
		if st.TaskCycles[t] == 0 {
			continue
		}
		fmt.Fprintf(&b, "  task %-2d %12d cycles (%5.1f%%), %d executed\n",
			t, st.TaskCycles[t], 100*st.Utilization(t), st.TaskExecuted[t])
	}
	return b.String()
}

// MBits converts a bit count over a cycle span to megabits/second at the
// 60 ns cycle.
func MBits(bits float64, cycles uint64) float64 {
	if cycles == 0 {
		return 0
	}
	return bits / (float64(cycles) * core.CycleNS * 1e-9) / 1e6
}
