package trace

import (
	"bytes"
	"strings"
	"testing"

	"dorado/internal/core"
	"dorado/internal/masm"
	"dorado/internal/microcode"
)

func smallMachine(t *testing.T) (*core.Machine, *masm.Program) {
	t.Helper()
	b := masm.NewBuilder()
	b.EmitAt("start", masm.I{FF: microcode.FFCountBase + 3})
	b.EmitAt("loop", masm.I{ALU: microcode.ALUAplus1, A: microcode.ASelT, LC: microcode.LCLoadT})
	b.Emit(masm.I{Flow: masm.Branch(microcode.CondCountNZ, "", "loop")})
	b.Halt()
	p, err := b.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.New(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	m.Load(&p.Words)
	m.Start(p.MustEntry("start"))
	return m, p
}

func TestWriterAnnotatesSymbols(t *testing.T) {
	m, p := smallMachine(t)
	var buf bytes.Buffer
	m.SetTracer(NewWriter(&buf, p))
	if !m.Run(100) {
		t.Fatal("did not halt")
	}
	out := buf.String()
	if !strings.Contains(out, "start") || !strings.Contains(out, "loop") {
		t.Fatalf("trace missing symbols:\n%s", out)
	}
	if strings.Count(out, "\n") != int(m.Cycle()) {
		t.Errorf("trace lines %d != cycles %d", strings.Count(out, "\n"), m.Cycle())
	}
}

func TestRingKeepsLastEvents(t *testing.T) {
	m, _ := smallMachine(t)
	r := NewRing(4)
	m.SetTracer(r)
	if !m.Run(100) {
		t.Fatal("did not halt")
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("ring kept %d events", len(evs))
	}
	// Oldest first, consecutive cycles ending at the halt.
	for i := 1; i < len(evs); i++ {
		if evs[i].Cycle != evs[i-1].Cycle+1 {
			t.Fatalf("ring out of order: %v", evs)
		}
	}
	if evs[len(evs)-1].Cycle != m.Cycle()-1 {
		t.Errorf("ring does not end at the last cycle")
	}
}

func TestRingPartialFill(t *testing.T) {
	m, _ := smallMachine(t)
	r := NewRing(1000)
	m.SetTracer(r)
	m.Run(100)
	if len(r.Events()) != int(m.Cycle()) {
		t.Errorf("partial ring has %d events, want %d", len(r.Events()), m.Cycle())
	}
}

func TestRingDumpSmoke(t *testing.T) {
	m, p := smallMachine(t)
	r := NewRing(8)
	m.SetTracer(r)
	m.Run(100)
	var buf bytes.Buffer
	r.Dump(&buf, p)
	if buf.Len() == 0 {
		t.Fatal("empty dump")
	}
}

func TestFormatStats(t *testing.T) {
	m, _ := smallMachine(t)
	m.Run(100)
	s := FormatStats(m.Stats())
	if !strings.Contains(s, "cycles") || !strings.Contains(s, "task 0") {
		t.Fatalf("bad stats report:\n%s", s)
	}
}

func TestMBits(t *testing.T) {
	// 16 bits per cycle at 60ns ≈ 266.7 Mbit/s (the slow-I/O peak).
	got := MBits(16*1000, 1000)
	if got < 260 || got > 270 {
		t.Errorf("MBits = %f, want ≈266.7", got)
	}
	if MBits(100, 0) != 0 {
		t.Error("zero cycles should give 0")
	}
}
