package trace

import (
	"dorado/internal/core"
	"dorado/internal/obs"
)

// MetricsSnapshot assembles a Prometheus-ready snapshot from a machine's
// counters and, when rec is non-nil, the recorder's histograms and wakeup
// counts. Families are appended in a fixed order and per-task samples in
// task order, so two identical runs render byte-identical text — the
// property the facade's golden-export tests pin down.
func MetricsSnapshot(m *core.Machine, rec *obs.Recorder) *obs.Snapshot {
	st := m.Stats()
	ms := m.Mem().Stats()
	is := m.IFU().Stats()

	s := &obs.Snapshot{}
	s.Add("dorado_cycles_total", "Machine cycles simulated.", "counter",
		obs.Sample{Value: st.Cycles})
	s.Add("dorado_instructions_total", "Microinstructions executed (excludes held cycles).", "counter",
		obs.Sample{Value: st.Executed})
	s.Add("dorado_holds_total", "Cycles lost to Hold (§5.7), by cause.", "counter",
		obs.Sample{Label: `{cause="md"}`, Value: st.HoldMD},
		obs.Sample{Label: `{cause="mem"}`, Value: st.HoldMem},
		obs.Sample{Label: `{cause="ifu"}`, Value: st.HoldIFU})
	s.Add("dorado_task_switches_total", "Context switches between microcode tasks (§5.3).", "counter",
		obs.Sample{Value: st.TaskSwitches})
	s.Add("dorado_task_blocks_total", "Voluntary processor releases via Block.", "counter",
		obs.Sample{Value: st.Blocks})
	s.Add("dorado_task_preemptions_total", "Involuntary switches to a higher-priority task.", "counter",
		obs.Sample{Value: st.Preemptions})
	s.Add("dorado_branch_stalls_total", "Dead cycles from the delayed-branch ablation.", "counter",
		obs.Sample{Value: st.BranchStalls})

	taskCycles := make([]obs.Sample, 0, core.NumTasks)
	taskExec := make([]obs.Sample, 0, core.NumTasks)
	for t := 0; t < core.NumTasks; t++ {
		if st.TaskCycles[t] == 0 && st.TaskExecuted[t] == 0 {
			continue
		}
		taskCycles = append(taskCycles, obs.Sample{Label: obs.TaskLabel(t), Value: st.TaskCycles[t]})
		taskExec = append(taskExec, obs.Sample{Label: obs.TaskLabel(t), Value: st.TaskExecuted[t]})
	}
	s.Add("dorado_task_cycles_total", "Processor cycles consumed per task.", "counter", taskCycles...)
	s.Add("dorado_task_instructions_total", "Microinstructions executed per task.", "counter", taskExec...)

	s.Add("dorado_cache_references_total", "Cache references, by kind.", "counter",
		obs.Sample{Label: `{kind="read"}`, Value: ms.Reads},
		obs.Sample{Label: `{kind="write"}`, Value: ms.Writes})
	s.Add("dorado_cache_hits_total", "Cache hits.", "counter",
		obs.Sample{Value: ms.Hits})
	s.Add("dorado_cache_misses_total", "Cache misses.", "counter",
		obs.Sample{Value: ms.Misses})
	s.Add("dorado_cache_writebacks_total", "Dirty-victim writebacks.", "counter",
		obs.Sample{Value: ms.Writebacks})
	s.Add("dorado_storage_ops_total", "Storage-pipe occupancies (fills, writebacks, fast-I/O blocks).", "counter",
		obs.Sample{Value: ms.StorageOps})
	s.Add("dorado_fast_io_blocks_total", "Fast-I/O blocks moved without cache involvement (§4), by direction.", "counter",
		obs.Sample{Label: `{dir="read"}`, Value: ms.FastReads},
		obs.Sample{Label: `{dir="write"}`, Value: ms.FastWrites})
	s.Add("dorado_map_faults_total", "References past the end of real storage.", "counter",
		obs.Sample{Value: ms.MapFaults})

	s.Add("dorado_ifu_dispatches_total", "Macroinstructions dispatched by the IFU (§2).", "counter",
		obs.Sample{Value: is.Dispatches})
	s.Add("dorado_ifu_resets_total", "IFU jumps/restarts.", "counter",
		obs.Sample{Value: is.Resets})
	s.Add("dorado_ifu_bytes_total", "Instruction-stream bytes consumed.", "counter",
		obs.Sample{Value: is.BytesRead})
	s.Add("dorado_ifu_fetched_words_total", "Words prefetched from memory by the IFU.", "counter",
		obs.Sample{Value: is.WordsFetch})

	if rec != nil {
		wakeups := make([]obs.Sample, 0, obs.MaxTasks)
		for t := 1; t < obs.MaxTasks; t++ {
			if n := rec.Wakeups(t); n != 0 {
				wakeups = append(wakeups, obs.Sample{Label: obs.TaskLabel(t), Value: n})
			}
		}
		s.Add("dorado_wakeups_total", "Rising wakeup-line edges per task (task 0's line is wired high).", "counter", wakeups...)
		s.AddHistogram("dorado_hold_latency_cycles", "Consecutive held cycles per hold episode (§5.7).",
			rec.HoldLatency().Snapshot())
		s.AddHistogram("dorado_wakeup_to_run_cycles", "Cycles from wakeup edge to first executed microinstruction (§5.4: two in the undisturbed case).",
			rec.WakeupToRun().Snapshot())
		s.Add("dorado_spans_dropped_total", "Scheduling spans lost to the recorder's span cap.", "counter",
			obs.Sample{Value: rec.SpansDropped()})
	}
	return s
}
