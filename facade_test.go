package dorado

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"

	"dorado/internal/bitblt"
)

func TestLispSystemFacade(t *testing.T) {
	sys, err := NewSystem(Lisp)
	if err != nil {
		t.Fatal(err)
	}
	asm := sys.Asm()
	asm.OpW("PUSHK", 40).OpW("PUSHK", 2).Op("ADDF").Op("HALT")
	if err := sys.Boot(asm); err != nil {
		t.Fatal(err)
	}
	if !sys.Run(100_000) {
		t.Fatal("did not halt")
	}
	st := sys.LispStack()
	if len(st) != 1 || st[0][1] != 42 {
		t.Fatalf("lisp stack = %v", st)
	}
}

func TestSmalltalkSystemFacade(t *testing.T) {
	sys, err := NewSystem(Smalltalk)
	if err != nil {
		t.Fatal(err)
	}
	asm := sys.Asm()
	asm.OpW("PUSHK", 21)
	asm.OpB2("SEND", 3, 0)
	asm.Op("HALT")
	asm.Label("double")
	asm.Op("PUSHSELF").Op("PUSHSELF").Op("ADDI")
	asm.Op("RETTOP")
	if err := sys.Boot(asm); err != nil {
		t.Fatal(err)
	}
	// A one-method SmallInteger world.
	mem := sys.Machine.Mem()
	const class = 0x5000
	mem.Poke(0x0018, class) // SIClassSlot
	mem.Poke(class, 0)
	mem.Poke(class+1, class+0x10)
	mem.Poke(class+2, 1)
	mem.Poke(class+0x10, 3)
	mem.Poke(class+0x11, 310)
	pc, err := asm.LabelPC("double")
	if err != nil {
		t.Fatal(err)
	}
	sys.DefineFunc(310, pc, 0)
	if !sys.Run(1_000_000) {
		t.Fatal("did not halt")
	}
	st := sys.Stack()
	if len(st) != 1 || st[0] != 42<<1|1 {
		t.Fatalf("smalltalk stack = %v", st)
	}
}

func TestFacadeDevices(t *testing.T) {
	m, err := NewMachine(Config{})
	if err != nil {
		t.Fatal(err)
	}
	disk := NewDisk(11)
	if disk.Task() != 11 || disk.CyclesPerWord != 27 {
		t.Errorf("disk = %+v", disk)
	}
	eth := NewEthernet(9)
	if eth.CyclesPerWord != 89 {
		t.Errorf("ethernet cadence = %d", eth.CyclesPerWord)
	}
	disp := NewDisplay(13, m, 8)
	if disp.Task() != 13 || disp.CyclesPerBlock != 8 {
		t.Errorf("display = %+v", disp)
	}
	if err := m.Attach(disk); err != nil {
		t.Fatal(err)
	}
	if err := m.Attach(disp); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeBitBlt(t *testing.T) {
	ps, err := NewBitBlt()
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMachine(Config{})
	if err != nil {
		t.Fatal(err)
	}
	m.Mem().Poke(0x1000, 0xBEEF)
	cycles, err := ps.Run(m, BitBltParams{
		Op: bitblt.Copy, Src: 0x1000, Dst: 0x2000,
		WidthWords: 1, Height: 1, SrcPitch: 1, DstPitch: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if cycles == 0 || m.Mem().Peek(0x2000) != 0xBEEF {
		t.Fatalf("copy failed: %d cycles, dst=%#x", cycles, m.Mem().Peek(0x2000))
	}
}

func TestLanguageStrings(t *testing.T) {
	names := map[Language]string{Mesa: "Mesa", BCPL: "BCPL", Lisp: "Lisp", Smalltalk: "Smalltalk"}
	for l, want := range names {
		if l.String() != want {
			t.Errorf("%d = %q", l, l.String())
		}
	}
	if Language(42).String() == "" {
		t.Error("unknown language renders empty")
	}
}

func TestNewSystemWithOptions(t *testing.T) {
	// The ablations are reachable through the facade.
	sys, err := NewSystemWith(Mesa, Config{Options: Options{DelayedBranch: true}})
	if err != nil {
		t.Fatal(err)
	}
	asm := sys.Asm()
	asm.OpB("LIB", 3).OpB("SL", 4)
	asm.Label("loop")
	asm.OpB("LL", 4).OpW("LIW", 1).Op("SUB").OpB("SL", 4)
	asm.OpB("LL", 4).OpL("JNZ", "loop")
	asm.Op("HALT")
	if err := sys.Boot(asm); err != nil {
		t.Fatal(err)
	}
	if !sys.Run(100_000) {
		t.Fatal("did not halt")
	}
	if sys.Machine.Stats().BranchStalls == 0 {
		t.Error("delayed-branch option had no effect")
	}
}

func TestBootSourceLisp(t *testing.T) {
	sys, err := NewSystem(Lisp)
	if err != nil {
		t.Fatal(err)
	}
	src := `
(define (len l) (ifnil l 0 (+ 1 (len (cdr l)))))
(len (cons 1 (cons 2 (cons 3 nil))))
`
	if err := sys.BootSource(src); err != nil {
		t.Fatal(err)
	}
	if !sys.Run(1_000_000) {
		t.Fatal("did not halt")
	}
	st := sys.LispStack()
	if len(st) != 1 || st[0][1] != 3 {
		t.Fatalf("lisp stack = %v", st)
	}
}

func TestBootSourceSmalltalk(t *testing.T) {
	sys, err := NewSystem(Smalltalk)
	if err != nil {
		t.Fatal(err)
	}
	src := `
(class Counter (n)
  (method bump (d) (setfield n (+ (field n) d)))
  (method value () (field n)))
(instance c Counter 40)
(send c bump 2)
(send c value)
`
	if err := sys.BootSource(src); err != nil {
		t.Fatal(err)
	}
	if !sys.Run(1_000_000) {
		t.Fatal("did not halt")
	}
	st := sys.Stack()
	if len(st) != 1 || st[0] != 42<<1|1 {
		t.Fatalf("smalltalk source result = %v", st)
	}
}

func TestBootSourceRejectsBCPL(t *testing.T) {
	sys, err := NewSystem(BCPL)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.BootSource("return 1;"); err == nil {
		t.Fatal("BCPL BootSource should be rejected")
	}
}

func TestFacadeSystemImage(t *testing.T) {
	img, err := BuildSystemImage()
	if err != nil {
		t.Fatal(err)
	}
	if img.Micro.Stats.WordsUsed < 400 {
		t.Errorf("image suspiciously small: %v", img.Micro.Stats)
	}
}

// The Example functions below are the compile-checked companions to
// docs/API.md: each section of the guided tour points at one of these, so
// the documented snippets can never drift from the real API.

// ExampleNew is the quickstart: build a Mesa system, assemble a byte-code
// program, boot it, and read the result off the hardware stack.
func ExampleNew() {
	sys, err := New(WithLanguage(Mesa))
	if err != nil {
		panic(err)
	}
	asm := sys.Asm()
	asm.OpB("LIB", 2).OpB("LIB", 40).Op("ADD").Op("HALT")
	if err := sys.Boot(asm); err != nil {
		panic(err)
	}
	sys.Run(10_000)
	fmt.Println(sys.Stack())
	// Output: [42]
}

// ExampleSystem_BootSource compiles the small Mesa-flavored source
// language and boots the result in one call.
func ExampleSystem_BootSource() {
	sys, err := New(WithLanguage(Mesa))
	if err != nil {
		panic(err)
	}
	if err := sys.BootSource("return 6*7;"); err != nil {
		panic(err)
	}
	halted := sys.Run(1_000_000)
	fmt.Println(halted, sys.Stack())
	// Output: true [42]
}

// ExampleNew_metrics attaches the cycle-level observability recorder and
// exports its counters in the Prometheus text format.
func ExampleNew_metrics() {
	sys, err := New(WithLanguage(Mesa), WithMetrics(NewMetrics()))
	if err != nil {
		panic(err)
	}
	if err := sys.BootSource("return 6*7;"); err != nil {
		panic(err)
	}
	sys.Run(1_000_000)
	var buf bytes.Buffer
	if err := sys.WritePrometheus(&buf); err != nil {
		panic(err)
	}
	out := buf.String()
	fmt.Println(strings.Contains(out, "# TYPE dorado_cycles_total counter"))
	fmt.Println(strings.Contains(out, "# TYPE dorado_task_switches_total counter"))
	// Output:
	// true
	// true
}

// Example_snapshotRestore captures a machine mid-run and rewinds it: the
// snapshot is a complete, versioned state document, so restoring lands the
// machine exactly where it was.
func Example_snapshotRestore() {
	sys, err := New(WithLanguage(Mesa))
	if err != nil {
		panic(err)
	}
	if err := sys.BootSource("return 6*7;"); err != nil {
		panic(err)
	}
	sys.Run(200)
	before := sys.Machine.Cycle()
	snap := sys.Machine.Snapshot()

	sys.Run(1_000) // keep going past the capture point...
	if err := sys.Machine.Restore(snap); err != nil {
		panic(err)
	}
	fmt.Println(sys.Machine.Cycle() == before)
	// ...and the restored machine re-runs the same future.
	sys.Run(1_000_000)
	fmt.Println(sys.Stack())
	// Output:
	// true
	// [42]
}

// Example_errorHandling shows the facade's sentinel errors; match them
// with errors.Is (install failures additionally carry an *InstallError
// for errors.As).
func Example_errorHandling() {
	_, err := New(WithLanguage(Language(99)))
	fmt.Println(errors.Is(err, ErrUnknownLanguage))

	sys, err := New(WithLanguage(BCPL))
	if err != nil {
		panic(err)
	}
	// BCPL has no source compiler; programs assemble via sys.Asm().
	err = sys.BootSource("x := 1")
	fmt.Println(errors.Is(err, ErrNoCompiler))
	// Output:
	// true
	// true
}
